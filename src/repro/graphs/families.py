"""The graph-family registry: one source of truth for named families.

Every surface that accepts a family *name* -- the CLI, the session API's
response metadata, benchmarks -- resolves it here. Each
:class:`FamilySpec` couples the builder with machine-readable metadata
(description, randomization, the size rule), so ``python -m repro
families --json`` and the CLI's ``choices=`` list can never drift apart.

Some families cannot realize every requested vertex count exactly (a
4-regular expander needs an even ``n``; a grid wants ``rows * cols``).
:attr:`FamilySpec.size_rule` documents the adjustment, and
:func:`build_family` reports the size actually built so callers can
surface it instead of silently substituting a different instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.graphs import generators
from repro.graphs.core import WeightedGraph

__all__ = [
    "FamilySpec",
    "FAMILY_REGISTRY",
    "family_names",
    "family_catalog",
    "get_family",
    "build_family",
]


def _grid_shape(n: int) -> tuple[int, int]:
    """The ``rows x cols`` grid with roughly ``n`` vertices."""
    rows = max(2, int(np.sqrt(n)))
    cols = max(2, int(np.ceil(n / rows)))
    return rows, cols


@dataclass(frozen=True)
class FamilySpec:
    """A named graph family: builder plus machine-readable metadata.

    Attributes
    ----------
    name:
        Registry key (what the CLI's ``--family`` accepts).
    description:
        One-line human description, surfaced by ``families --json``.
    build:
        ``(n, rng) -> WeightedGraph`` factory. Deterministic families
        ignore the rng.
    randomized:
        Whether the instance depends on the rng (expander, gnp).
    min_n:
        Smallest requested size the builder accepts.
    size_rule:
        Human note on how requested sizes map to realized sizes
        (``None`` when the family always builds exactly ``n`` vertices).
    """

    name: str
    description: str
    build: Callable[[int, np.random.Generator], WeightedGraph]
    randomized: bool = False
    min_n: int = 2
    size_rule: str | None = None

    def describe(self) -> dict:
        """JSON-able metadata record (the ``families --json`` row)."""
        return {
            "name": self.name,
            "description": self.description,
            "randomized": self.randomized,
            "min_n": self.min_n,
            "size_rule": self.size_rule,
        }


FAMILY_REGISTRY: dict[str, FamilySpec] = {
    spec.name: spec
    for spec in [
        FamilySpec(
            "expander",
            "random 4-regular graph (spectral expander w.h.p.)",
            lambda n, rng: generators.random_regular_graph(
                n if n % 2 == 0 else n + 1, 4, rng=rng
            ),
            randomized=True,
            min_n=5,
            size_rule="odd n is rounded up to n + 1 (4-regular needs even n)",
        ),
        FamilySpec(
            "gnp",
            "Erdos-Renyi G(n, p) above the connectivity threshold",
            lambda n, rng: generators.erdos_renyi_graph(n, rng=rng),
            randomized=True,
            min_n=2,
        ),
        FamilySpec(
            "complete",
            "complete graph K_n",
            lambda n, rng: generators.complete_graph(n),
            min_n=2,
        ),
        FamilySpec(
            "cycle",
            "cycle C_n",
            lambda n, rng: generators.cycle_graph(n),
            min_n=3,
        ),
        FamilySpec(
            "path",
            "path P_n",
            lambda n, rng: generators.path_graph(n),
            min_n=2,
        ),
        FamilySpec(
            "star",
            "star K_{1,n-1}",
            lambda n, rng: generators.star_graph(n),
            min_n=2,
        ),
        FamilySpec(
            "wheel",
            "wheel (cycle + hub)",
            lambda n, rng: generators.wheel_graph(n),
            min_n=4,
        ),
        FamilySpec(
            "lollipop",
            "clique with a pendant path (Theta(n^3) cover time)",
            lambda n, rng: generators.lollipop_graph(n),
            min_n=4,
        ),
        FamilySpec(
            "barbell",
            "two cliques joined by a path",
            lambda n, rng: generators.barbell_graph(n),
            min_n=6,
        ),
        FamilySpec(
            "bipartite",
            "dense irregular K_{n-sqrt(n), sqrt(n)} (Section 1.2)",
            lambda n, rng: generators.complete_bipartite_unbalanced(n),
            min_n=4,
        ),
        FamilySpec(
            "grid",
            "near-square rows x cols grid",
            lambda n, rng: generators.grid_graph(*_grid_shape(n)),
            min_n=4,
            size_rule="builds the rows x cols grid closest to n vertices",
        ),
    ]
}


def family_names() -> list[str]:
    """Sorted registry keys (the CLI's ``choices=`` list)."""
    return sorted(FAMILY_REGISTRY)


def family_catalog() -> list[dict]:
    """JSON-able metadata for every family, sorted by name."""
    return [FAMILY_REGISTRY[name].describe() for name in family_names()]


def get_family(name: str) -> FamilySpec:
    """Look up a family spec; raises :class:`ReproError` on unknown names."""
    try:
        return FAMILY_REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown family {name!r}; choose from {family_names()}"
        ) from None


def build_family(
    name: str, n: int, rng: np.random.Generator | int | None = None
) -> tuple[WeightedGraph, dict]:
    """Build family ``name`` at (roughly) ``n`` vertices.

    Returns ``(graph, meta)`` where ``meta`` records the requested and
    realized sizes -- families that cannot hit ``n`` exactly (see
    :attr:`FamilySpec.size_rule`) set ``size_adjusted`` so callers can
    surface the substitution instead of hiding it.
    """
    spec = get_family(name)
    if n < spec.min_n:
        raise ReproError(
            f"family {name!r} needs n >= {spec.min_n}, got {n}"
        )
    graph = spec.build(n, np.random.default_rng(rng))
    return graph, {
        "family": name,
        "requested_n": int(n),
        "n": int(graph.n),
        "size_adjusted": int(graph.n) != int(n),
    }
