"""Graph and tree serialization: edge lists and JSON documents.

Practical plumbing for downstream users: persist generated workloads so
experiments are replayable, and exchange sampled trees with other tools.

Formats:

- **edge list** (text): one ``u v [weight]`` line per edge, ``#`` comments
  and a ``# vertices: n`` header so isolated vertices round-trip;
- **JSON document**: ``{"n": ..., "edges": [[u, v, w], ...]}`` for graphs
  and ``{"n": ..., "tree": [[u, v], ...]}`` for trees, with an explicit
  ``"format"`` tag and version.

Both readers validate at parse time: duplicate edges, self-loops,
out-of-range or negative endpoints, non-positive weights, unparseable
tokens, and empty documents raise :class:`~repro.errors.FormatError`
carrying the offending line number (edge lists) or edge index (JSON) --
instead of handing phase numerics a graph that only fails much later,
deep inside a Schur solve.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable

from repro.errors import FormatError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, tree_key

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "tree_to_json",
    "tree_from_json",
]

_FORMAT_GRAPH = "repro-graph-v1"
_FORMAT_TREE = "repro-tree-v1"


def write_edge_list(graph: WeightedGraph, path: str | Path) -> None:
    """Write a graph as a plain-text edge list."""
    path = Path(path)
    lines = [f"# vertices: {graph.n}"]
    for u, v in graph.edges():
        weight = graph.weight(u, v)
        if weight == 1.0:
            lines.append(f"{u} {v}")
        else:
            lines.append(f"{u} {v} {weight!r}")
    path.write_text("\n".join(lines) + "\n")


def _validated_edge(
    u: int, v: int, weight: float, seen: dict[tuple[int, int], str], where: str
) -> tuple[int, int]:
    """Shared parse-time edge checks; returns the normalized (min, max) key.

    ``seen`` maps normalized edges to the location that first declared
    them; ``where`` names the current location (``path:lineno`` for edge
    lists, ``edge #k`` for JSON documents).
    """
    if u < 0 or v < 0:
        raise FormatError(f"{where}: negative vertex in edge ({u}, {v})")
    if u == v:
        raise FormatError(f"{where}: self-loop ({u}, {u}) is not allowed")
    if not (math.isfinite(weight) and weight > 0):
        raise FormatError(
            f"{where}: edge ({u}, {v}) has non-positive or non-finite "
            f"weight {weight!r}"
        )
    key = (min(u, v), max(u, v))
    first = seen.get(key)
    if first is not None:
        raise FormatError(
            f"{where}: duplicate edge ({u}, {v}); first declared at {first}"
        )
    seen[key] = where
    return key


def read_edge_list(path: str | Path) -> WeightedGraph:
    """Read a graph written by :func:`write_edge_list` (or compatible).

    Malformed input -- unparseable tokens, self-loops, duplicate edges,
    negative vertices, non-positive weights, a header contradicting the
    edges, or a document with no header and no edges -- raises
    :class:`~repro.errors.FormatError` with the offending ``path:line``.
    Blank lines and ``#`` comments are ignored as before.
    """
    path = Path(path)
    n: int | None = None
    edges: list[tuple[int, int, float]] = []
    seen: dict[tuple[int, int], str] = {}
    max_vertex = -1
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("vertices:"):
                try:
                    n = int(body.split(":", 1)[1])
                except ValueError:
                    raise FormatError(
                        f"{path}:{lineno}: malformed vertex-count header "
                        f"{line!r}"
                    ) from None
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise FormatError(f"{path}:{lineno}: malformed edge line {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError:
            raise FormatError(
                f"{path}:{lineno}: unparseable edge line {line!r}"
            ) from None
        _validated_edge(u, v, weight, seen, f"{path}:{lineno}")
        edges.append((u, v, weight))
        max_vertex = max(max_vertex, u, v)
    if n is None and not edges:
        raise FormatError(
            f"{path}: empty edge list (no edges and no '# vertices:' header)"
        )
    if n is None:
        n = max_vertex + 1
    if n <= max_vertex:
        raise FormatError(
            f"{path}: header says {n} vertices but edge references "
            f"vertex {max_vertex}"
        )
    return WeightedGraph.from_edges(n, edges)


def graph_to_json(graph: WeightedGraph) -> str:
    """Serialize a graph to a JSON document string."""
    return json.dumps(
        {
            "format": _FORMAT_GRAPH,
            "n": graph.n,
            "edges": [
                [u, v, graph.weight(u, v)] for u, v in graph.edges()
            ],
        }
    )


def graph_from_json(document: str) -> WeightedGraph:
    """Parse a graph from :func:`graph_to_json` output.

    Mirrors :func:`read_edge_list`'s parse-time validation -- duplicate
    edges, self-loops, out-of-range endpoints, non-positive weights, and
    malformed rows raise :class:`~repro.errors.FormatError` with the
    offending edge index.
    """
    payload = json.loads(document)
    if payload.get("format") != _FORMAT_GRAPH:
        raise FormatError(
            f"not a {_FORMAT_GRAPH} document (format="
            f"{payload.get('format')!r})"
        )
    try:
        n = int(payload["n"])
    except (KeyError, TypeError, ValueError):
        raise FormatError(
            f"graph document needs an integer 'n', got "
            f"{payload.get('n')!r}"
        ) from None
    if n < 0:
        raise FormatError(f"graph document has negative n = {n}")
    edges: list[tuple[int, int, float]] = []
    seen: dict[tuple[int, int], str] = {}
    for index, row in enumerate(payload.get("edges", [])):
        where = f"edge #{index}"
        try:
            u, v, w = int(row[0]), int(row[1]), float(row[2])
        except (TypeError, ValueError, IndexError):
            raise FormatError(f"{where}: malformed edge row {row!r}") from None
        if u >= n or v >= n:
            raise FormatError(
                f"{where}: edge ({u}, {v}) out of range for n={n}"
            )
        _validated_edge(u, v, w, seen, where)
        edges.append((u, v, w))
    return WeightedGraph.from_edges(n, edges)


def tree_to_json(n: int, tree: Iterable[tuple[int, int]]) -> str:
    """Serialize a spanning tree (edge set) to JSON."""
    return json.dumps(
        {
            "format": _FORMAT_TREE,
            "n": n,
            "tree": [[u, v] for u, v in tree_key(tree)],
        }
    )


def tree_from_json(document: str) -> tuple[int, TreeKey]:
    """Parse ``(n, tree_key)`` from :func:`tree_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != _FORMAT_TREE:
        raise FormatError(
            f"not a {_FORMAT_TREE} document (format="
            f"{payload.get('format')!r})"
        )
    return int(payload["n"]), tree_key(
        (int(u), int(v)) for u, v in payload["tree"]
    )
