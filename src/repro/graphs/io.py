"""Graph and tree serialization: edge lists and JSON documents.

Practical plumbing for downstream users: persist generated workloads so
experiments are replayable, and exchange sampled trees with other tools.

Formats:

- **edge list** (text): one ``u v [weight]`` line per edge, ``#`` comments
  and a ``# vertices: n`` header so isolated vertices round-trip;
- **JSON document**: ``{"n": ..., "edges": [[u, v, w], ...]}`` for graphs
  and ``{"n": ..., "tree": [[u, v], ...]}`` for trees, with an explicit
  ``"format"`` tag and version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, tree_key

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "tree_to_json",
    "tree_from_json",
]

_FORMAT_GRAPH = "repro-graph-v1"
_FORMAT_TREE = "repro-tree-v1"


def write_edge_list(graph: WeightedGraph, path: str | Path) -> None:
    """Write a graph as a plain-text edge list."""
    path = Path(path)
    lines = [f"# vertices: {graph.n}"]
    for u, v in graph.edges():
        weight = graph.weight(u, v)
        if weight == 1.0:
            lines.append(f"{u} {v}")
        else:
            lines.append(f"{u} {v} {weight!r}")
    path.write_text("\n".join(lines) + "\n")


def read_edge_list(path: str | Path) -> WeightedGraph:
    """Read a graph written by :func:`write_edge_list` (or compatible)."""
    path = Path(path)
    n: int | None = None
    edges: list[tuple[int, int, float]] = []
    max_vertex = -1
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("vertices:"):
                n = int(body.split(":", 1)[1])
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise GraphError(f"{path}:{lineno}: malformed edge line {line!r}")
        u, v = int(parts[0]), int(parts[1])
        weight = float(parts[2]) if len(parts) == 3 else 1.0
        edges.append((u, v, weight))
        max_vertex = max(max_vertex, u, v)
    if n is None:
        n = max_vertex + 1
    if n <= max_vertex:
        raise GraphError(
            f"{path}: header says {n} vertices but edge references "
            f"vertex {max_vertex}"
        )
    return WeightedGraph.from_edges(n, edges)


def graph_to_json(graph: WeightedGraph) -> str:
    """Serialize a graph to a JSON document string."""
    return json.dumps(
        {
            "format": _FORMAT_GRAPH,
            "n": graph.n,
            "edges": [
                [u, v, graph.weight(u, v)] for u, v in graph.edges()
            ],
        }
    )


def graph_from_json(document: str) -> WeightedGraph:
    """Parse a graph from :func:`graph_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != _FORMAT_GRAPH:
        raise GraphError(
            f"not a {_FORMAT_GRAPH} document (format="
            f"{payload.get('format')!r})"
        )
    return WeightedGraph.from_edges(
        int(payload["n"]),
        [(int(u), int(v), float(w)) for u, v, w in payload["edges"]],
    )


def tree_to_json(n: int, tree: Iterable[tuple[int, int]]) -> str:
    """Serialize a spanning tree (edge set) to JSON."""
    return json.dumps(
        {
            "format": _FORMAT_TREE,
            "n": n,
            "tree": [[u, v] for u, v in tree_key(tree)],
        }
    )


def tree_from_json(document: str) -> tuple[int, TreeKey]:
    """Parse ``(n, tree_key)`` from :func:`tree_to_json` output."""
    payload = json.loads(document)
    if payload.get("format") != _FORMAT_TREE:
        raise GraphError(
            f"not a {_FORMAT_TREE} document (format="
            f"{payload.get('format')!r})"
        )
    return int(payload["n"]), tree_key(
        (int(u), int(v)) for u, v in payload["tree"]
    )
