"""Weighted undirected graphs backed by dense numpy arrays.

The paper works with an n-vertex unweighted input graph G, but everything
after phase 1 lives on *weighted* graphs (Schur complements of G carry
positive real weights, Section 1.7). :class:`WeightedGraph` is therefore the
single graph type used throughout the library:

- unweighted graphs are weighted graphs with all weights equal to 1;
- footnote 1's integer-weight inputs (weights in {1, ..., W}) are validated
  by :meth:`WeightedGraph.validate_integer_weights`;
- Schur complements produce arbitrary positive real weights.

Vertices are always ``0..n-1`` -- in the CongestedClique model machine ``i``
hosts vertex ``i`` (Section 1.6), so integer identities double as machine
addresses. Conversion helpers to and from ``networkx`` are provided for
interop and for the generator implementations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from repro.errors import DisconnectedGraphError, GraphError, WeightError

__all__ = ["WeightedGraph"]

_ATOL = 1e-12


class WeightedGraph:
    """A simple undirected graph with positive edge weights.

    Parameters
    ----------
    weights:
        An ``(n, n)`` symmetric matrix with zero diagonal; entry ``[u, v]``
        is the weight of edge ``{u, v}`` and ``0`` means "no edge".
    validate:
        When true (default), check symmetry, zero diagonal, non-negativity
        and finiteness. Internal callers that construct weight matrices
        known to be valid may pass ``False``.

    Notes
    -----
    The matrix is copied and frozen (``writeable=False``) so a graph is
    immutable after construction; all derived quantities are cached.
    """

    __slots__ = (
        "_weights",
        "_degrees",
        "_transition",
        "_laplacian",
        "_edges",
        "_neighbors",
    )

    def __init__(self, weights: np.ndarray, *, validate: bool = True) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise GraphError(
                f"weight matrix must be square, got shape {weights.shape}"
            )
        if validate:
            if not np.all(np.isfinite(weights)):
                raise WeightError("edge weights must be finite")
            if np.any(weights < 0):
                raise WeightError("edge weights must be non-negative")
            if np.any(np.abs(np.diagonal(weights)) > _ATOL):
                raise GraphError("self-loops are not allowed (nonzero diagonal)")
            if not np.allclose(weights, weights.T, atol=_ATOL):
                raise GraphError("weight matrix must be symmetric")
        weights = weights.copy()
        np.fill_diagonal(weights, 0.0)
        # Symmetrize exactly so float asymmetry below _ATOL cannot leak into
        # transition matrices.
        weights = (weights + weights.T) / 2.0
        weights.setflags(write=False)
        self._weights = weights
        self._degrees: np.ndarray | None = None
        self._transition: np.ndarray | None = None
        self._laplacian: np.ndarray | None = None
        self._edges: tuple[tuple[int, int], ...] | None = None
        self._neighbors: tuple[tuple[int, ...], ...] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
    ) -> "WeightedGraph":
        """Build a graph on ``n`` vertices from an edge list.

        Each edge is ``(u, v)`` (weight 1) or ``(u, v, w)``. Duplicate edges
        accumulate weight, mirroring multigraph collapse.
        """
        weights = np.zeros((n, n), dtype=np.float64)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = edge  # type: ignore[misc]
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop ({u}, {u}) is not allowed")
            if w <= 0:
                raise WeightError(f"edge ({u}, {v}) has non-positive weight {w}")
            weights[u, v] += w
            weights[v, u] += w
        return cls(weights, validate=False)

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "WeightedGraph":
        """Convert a networkx graph (nodes relabeled to ``0..n-1``).

        Edge attribute ``"weight"`` is honoured; missing weights default
        to 1. Node order follows ``sorted(graph.nodes)`` when all nodes are
        sortable, else insertion order.
        """
        nodes = list(graph.nodes)
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        weights = np.zeros((n, n), dtype=np.float64)
        for u, v, data in graph.edges(data=True):
            if u == v:
                continue
            w = float(data.get("weight", 1.0))
            if w <= 0:
                raise WeightError(f"edge ({u}, {v}) has non-positive weight {w}")
            weights[index[u], index[v]] = w
            weights[index[v], index[u]] = w
        return cls(weights, validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._weights.shape[0]

    @property
    def m(self) -> int:
        """Number of edges (pairs with nonzero weight)."""
        return len(self.edges())

    @property
    def weights(self) -> np.ndarray:
        """The (read-only) symmetric weight matrix."""
        return self._weights

    def degrees(self) -> np.ndarray:
        """Weighted degree vector: ``d[u] = sum_v w(u, v)``."""
        if self._degrees is None:
            degrees = self._weights.sum(axis=1)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    def degree(self, u: int) -> float:
        """Weighted degree of a single vertex."""
        return float(self.degrees()[u])

    def unweighted_degree(self, u: int) -> int:
        """Number of neighbors of ``u`` (ignores weights)."""
        return len(self.neighbors(u))

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All edges as sorted ``(u, v)`` tuples with ``u < v``."""
        if self._edges is None:
            rows, cols = np.nonzero(np.triu(self._weights, k=1))
            self._edges = tuple(
                (int(u), int(v)) for u, v in zip(rows.tolist(), cols.tolist())
            )
        return self._edges

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return bool(self._weights[u, v] > 0)

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (0 when absent)."""
        return float(self._weights[u, v])

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Neighbors of ``u`` in increasing vertex order."""
        if self._neighbors is None:
            self._neighbors = tuple(
                tuple(int(v) for v in np.nonzero(row)[0].tolist())
                for row in self._weights
            )
        return self._neighbors[u]

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._weights.shape == other._weights.shape and bool(
            np.allclose(self._weights, other._weights, atol=_ATOL)
        )

    def __hash__(self) -> int:
        return hash((self.n, self._weights.tobytes()))

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------

    def transition_matrix(self) -> np.ndarray:
        """Random walk transition matrix P (Section 1.1).

        ``P[a, b] = w(a, b) / degree(a)``; for unweighted graphs this is the
        paper's "equal probability 1/degree(a)" walk. Isolated vertices get
        an identity (self-absorbing) row so P stays row-stochastic.
        """
        if self._transition is None:
            degrees = self.degrees().copy()
            isolated = degrees <= 0
            degrees[isolated] = 1.0
            transition = self._weights / degrees[:, None]
            if isolated.any():
                idx = np.nonzero(isolated)[0]
                transition[idx, idx] = 1.0
            transition.setflags(write=False)
            self._transition = transition
        return self._transition

    def laplacian(self) -> np.ndarray:
        """Graph Laplacian ``L = D - W`` (Section 1.7)."""
        if self._laplacian is None:
            laplacian = np.diag(self.degrees()) - self._weights
            laplacian.setflags(write=False)
            self._laplacian = laplacian
        return self._laplacian

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (single vertex counts as connected)."""
        n = self.n
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return bool(seen.all())

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "graph is disconnected; it has no spanning tree"
            )

    def is_unweighted(self) -> bool:
        """Whether every present edge has weight exactly 1."""
        present = self._weights > 0
        return bool(np.allclose(self._weights[present], 1.0, atol=_ATOL))

    def validate_integer_weights(self, max_weight: float | None = None) -> None:
        """Enforce footnote 1: positive integer weights, optionally <= W.

        Raises :class:`WeightError` when a present edge has a non-integer
        weight or exceeds ``max_weight``.
        """
        present = self._weights > 0
        values = self._weights[present]
        if not np.allclose(values, np.round(values), atol=_ATOL):
            raise WeightError("edge weights must be positive integers")
        if max_weight is not None and np.any(values > max_weight + _ATOL):
            raise WeightError(f"edge weights must be at most {max_weight}")

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def subgraph(self, vertices: Sequence[int]) -> "WeightedGraph":
        """Induced subgraph on ``vertices`` (relabeled to 0..k-1 in order)."""
        idx = np.asarray(list(vertices), dtype=np.intp)
        return WeightedGraph(self._weights[np.ix_(idx, idx)], validate=False)

    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph with ``weight`` edge attributes."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        for u, v in self.edges():
            graph.add_edge(u, v, weight=self.weight(u, v))
        return graph
