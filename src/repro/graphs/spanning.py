"""Spanning-tree combinatorics: counting, enumeration, canonical encodings.

These utilities supply the *exact ground truth* against which the samplers
are validated:

- :func:`count_spanning_trees` implements the weighted Matrix-Tree theorem
  (the paper's Section 1 historical anchor): the number (or total weight)
  of spanning trees equals any cofactor of the Laplacian.
- :func:`enumerate_spanning_trees` exhaustively lists spanning trees of
  small graphs so empirical sampler output can be compared to the uniform
  (or weight-proportional) distribution in total variation distance.
- :func:`tree_key` gives a canonical hashable encoding so trees can be used
  as dictionary keys when building empirical distributions.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Mapping

import numpy as np

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "count_spanning_trees",
    "enumerate_spanning_trees",
    "is_spanning_tree",
    "tree_key",
    "tree_weight",
    "uniform_tree_distribution",
]

TreeKey = tuple[tuple[int, int], ...]


def tree_key(edges: Iterable[tuple[int, int]]) -> TreeKey:
    """Canonical hashable encoding of an edge set.

    Each edge is normalized to ``(min, max)`` and the edge list is sorted,
    so two representations of the same tree always produce equal keys.
    """
    normalized = sorted((min(u, v), max(u, v)) for u, v in edges)
    return tuple(normalized)


def is_spanning_tree(graph: WeightedGraph, edges: Iterable[tuple[int, int]]) -> bool:
    """Whether ``edges`` forms a spanning tree of ``graph``.

    Checks: exactly ``n - 1`` distinct edges, every edge present in the
    graph, and connectivity (which together with the count implies
    acyclicity).
    """
    n = graph.n
    edge_set = set(tree_key(edges))
    if len(edge_set) != n - 1:
        return False
    for u, v in edge_set:
        if not graph.has_edge(u, v):
            return False
    if n == 0:
        return True
    adjacency: dict[int, list[int]] = {v: [] for v in range(n)}
    for u, v in edge_set:
        adjacency[u].append(v)
        adjacency[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == n


def count_spanning_trees(graph: WeightedGraph) -> float:
    """Total spanning-tree weight via the Matrix-Tree theorem.

    For unweighted graphs this is the number of spanning trees; for
    weighted graphs it is ``sum over trees of prod of edge weights`` --
    exactly the normalizer of the distribution footnote 1 says weighted
    inputs are sampled from. Computed as ``det`` of the Laplacian with the
    last row/column deleted, using a sign-stable ``slogdet``.
    """
    n = graph.n
    if n == 0:
        return 0.0
    if n == 1:
        return 1.0
    minor = graph.laplacian()[: n - 1, : n - 1]
    sign, logdet = np.linalg.slogdet(minor)
    if sign <= 0:
        # Numerically singular minor => disconnected (count 0).
        return 0.0
    return float(math.exp(logdet))


def tree_weight(graph: WeightedGraph, edges: Iterable[tuple[int, int]]) -> float:
    """Product of edge weights of a tree (1.0 for unweighted graphs)."""
    weight = 1.0
    for u, v in edges:
        weight *= graph.weight(u, v)
    return weight


def enumerate_spanning_trees(
    graph: WeightedGraph, *, limit: int = 2_000_000
) -> list[TreeKey]:
    """Exhaustively enumerate all spanning trees of a small graph.

    Iterates over all ``(n-1)``-subsets of the edge set and keeps those
    forming spanning trees. Intended for validation graphs (n <= ~10,
    m <= ~20); raises :class:`GraphError` when the search space exceeds
    ``limit`` combinations.
    """
    n, m = graph.n, graph.m
    if n < 2:
        return [()] if n == 1 else []
    if m < n - 1:
        raise DisconnectedGraphError("graph has too few edges to be connected")
    combos = math.comb(m, n - 1)
    if combos > limit:
        raise GraphError(
            f"enumeration would scan {combos} subsets (> limit {limit}); "
            "use count_spanning_trees for large graphs"
        )
    edges = graph.edges()
    trees = [
        tree_key(subset)
        for subset in itertools.combinations(edges, n - 1)
        if is_spanning_tree(graph, subset)
    ]
    if not trees:
        raise DisconnectedGraphError("graph has no spanning tree")
    return trees


def uniform_tree_distribution(graph: WeightedGraph) -> Mapping[TreeKey, float]:
    """Exact target distribution over spanning trees.

    Unweighted graphs: uniform over all spanning trees. Weighted graphs:
    probability proportional to the product of edge weights (footnote 1).
    Only feasible for graphs small enough for full enumeration.
    """
    trees = enumerate_spanning_trees(graph)
    weights = np.array([tree_weight(graph, tree) for tree in trees])
    total = weights.sum()
    if total <= 0:
        raise DisconnectedGraphError("graph has no positive-weight spanning tree")
    return {tree: float(w / total) for tree, w in zip(trees, weights)}
