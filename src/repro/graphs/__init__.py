"""Graph substrate: weighted graphs, generators, and tree combinatorics.

This subpackage provides everything the samplers need to know about the
input graph:

- :mod:`repro.graphs.core` -- the :class:`WeightedGraph` container with
  transition matrices and Laplacians (Section 1.1 / 1.7 of the paper);
- :mod:`repro.graphs.generators` -- the graph families the paper discusses
  (expanders, G(n,p), the dense irregular K_{n-sqrt(n),sqrt(n)}, lollipops
  with Theta(n^3) cover time, ...);
- :mod:`repro.graphs.spanning` -- Matrix-Tree counting, spanning tree
  enumeration and canonical encodings used for statistical validation;
- :mod:`repro.graphs.covertime` -- exact hitting times and cover-time
  estimates used to scope walk lengths (Corollary 1).
"""

from repro.graphs.core import WeightedGraph
from repro.graphs.generators import (
    barbell_graph,
    binary_tree_graph,
    complete_bipartite_unbalanced,
    complete_graph,
    cycle_graph,
    cycle_with_chord,
    erdos_renyi_graph,
    figure2_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    theta_graph,
    wheel_graph,
)
from repro.graphs.spanning import (
    count_spanning_trees,
    enumerate_spanning_trees,
    is_spanning_tree,
    tree_key,
    uniform_tree_distribution,
)
from repro.graphs.covertime import (
    cover_time_bound,
    empirical_cover_time,
    hitting_time_matrix,
    max_hitting_time,
)
from repro.graphs.electrical import (
    commute_time,
    edge_leverage_scores,
    effective_resistance,
    effective_resistance_matrix,
    foster_sum,
)
from repro.graphs.spectral import (
    is_expander,
    mixing_time_bound,
    relaxation_time,
    spectral_gap,
    walk_eigenvalues,
)
from repro.graphs.families import (
    FAMILY_REGISTRY,
    FamilySpec,
    build_family,
    family_catalog,
    family_names,
    get_family,
)

__all__ = [
    "WeightedGraph",
    "FAMILY_REGISTRY",
    "FamilySpec",
    "build_family",
    "family_catalog",
    "family_names",
    "get_family",
    "barbell_graph",
    "binary_tree_graph",
    "complete_bipartite_unbalanced",
    "complete_graph",
    "cycle_graph",
    "cycle_with_chord",
    "erdos_renyi_graph",
    "figure2_graph",
    "grid_graph",
    "lollipop_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "theta_graph",
    "wheel_graph",
    "count_spanning_trees",
    "enumerate_spanning_trees",
    "is_spanning_tree",
    "tree_key",
    "uniform_tree_distribution",
    "cover_time_bound",
    "empirical_cover_time",
    "hitting_time_matrix",
    "max_hitting_time",
    "commute_time",
    "edge_leverage_scores",
    "effective_resistance",
    "effective_resistance_matrix",
    "foster_sum",
    "is_expander",
    "mixing_time_bound",
    "relaxation_time",
    "spectral_gap",
    "walk_eigenvalues",
]
