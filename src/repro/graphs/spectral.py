"""Spectral machinery: gaps, relaxation and mixing times, expander checks.

The paper's fast families are defined spectrally -- "expanders and
Erdos-Renyi random graphs have O(n log n) cover time" (Section 1.2) --
and the nominal walk lengths implicitly ride on mixing behaviour (the
Theta~(n^3) powers converge to stationarity). This module makes those
quantities first-class:

- :func:`spectral_gap` / :func:`relaxation_time` of the lazy or plain
  walk;
- :func:`mixing_time_bound`: ``t_mix(eps) <= t_rel * ln(n / eps)`` for
  reversible chains;
- :func:`is_expander`: certify a near-Ramanujan second eigenvalue for
  d-regular graphs;
- :func:`cover_time_spectral_bound`: the O(t_rel * n log n) cover bound
  that explains why expanders fall into Corollary 1's cheap regime.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "walk_eigenvalues",
    "spectral_gap",
    "relaxation_time",
    "mixing_time_bound",
    "is_expander",
    "cover_time_spectral_bound",
]


def walk_eigenvalues(graph: WeightedGraph, *, lazy: bool = False) -> np.ndarray:
    """Eigenvalues of the (reversible) random-walk operator, descending.

    Computed from the symmetric normalization
    ``D^{-1/2} W D^{-1/2}`` (similar to P, hence same spectrum);
    ``lazy=True`` maps each eigenvalue through ``(1 + lam) / 2``.
    """
    graph.require_connected()
    degrees = graph.degrees()
    if np.any(degrees <= 0):
        raise GraphError("walk spectrum undefined with isolated vertices")
    scale = 1.0 / np.sqrt(degrees)
    symmetric = graph.weights * scale[:, None] * scale[None, :]
    eigenvalues = np.linalg.eigvalsh(symmetric)[::-1]
    if lazy:
        eigenvalues = (1.0 + eigenvalues) / 2.0
    return eigenvalues


def spectral_gap(graph: WeightedGraph, *, lazy: bool = True) -> float:
    """``1 - max(|lam_2|, |lam_n|)`` -- the absolute spectral gap.

    The lazy walk (default) removes periodicity, so bipartite graphs get
    a positive gap; ``lazy=False`` reports the plain walk's gap, which is
    0 exactly for bipartite graphs.
    """
    eigenvalues = walk_eigenvalues(graph, lazy=lazy)
    others = np.abs(eigenvalues[1:])
    return float(1.0 - others.max()) if len(others) else 1.0


def relaxation_time(graph: WeightedGraph, *, lazy: bool = True) -> float:
    """``t_rel = 1 / gap`` of the (lazy) walk."""
    gap = spectral_gap(graph, lazy=lazy)
    if gap <= 1e-12:
        raise GraphError(
            "zero spectral gap (bipartite non-lazy walk?); use lazy=True"
        )
    return 1.0 / gap


def mixing_time_bound(
    graph: WeightedGraph, epsilon: float = 0.25, *, lazy: bool = True
) -> float:
    """Standard reversible-chain bound ``t_mix(eps) <= t_rel ln(n / eps)``.

    (More precisely ``t_rel * ln(1 / (eps * sqrt(pi_min)))``; we use the
    ``pi_min >= 1/(2m)`` coarsening, which suffices for scoping walk
    lengths.)
    """
    if not (0 < epsilon < 1):
        raise GraphError(f"epsilon must be in (0, 1), got {epsilon}")
    total_weight = float(graph.weights.sum())
    pi_min = graph.degrees().min() / total_weight
    return relaxation_time(graph, lazy=lazy) * math.log(
        1.0 / (epsilon * math.sqrt(pi_min))
    )


def is_expander(
    graph: WeightedGraph, *, slack: float = 1.5
) -> bool:
    """Certify near-Ramanujan expansion for a d-regular unweighted graph.

    True iff the graph is d-regular and its second-largest absolute walk
    eigenvalue is at most ``slack * 2 sqrt(d - 1) / d`` (Ramanujan =
    slack 1). Random d-regular graphs pass w.h.p. (Friedman's theorem),
    which is why :func:`repro.graphs.generators.random_regular_graph` is
    the bench harness's expander family.
    """
    degrees = graph.degrees()
    if not graph.is_unweighted() or not np.allclose(degrees, degrees[0]):
        return False
    d = float(degrees[0])
    if d < 3:
        return False
    eigenvalues = walk_eigenvalues(graph, lazy=False)
    second = float(np.abs(eigenvalues[1:]).max())
    return second <= slack * 2.0 * math.sqrt(d - 1.0) / d


def cover_time_spectral_bound(graph: WeightedGraph) -> float:
    """Cover time bound ``O(t_rel n log n)`` via Matthews + mixing.

    Explicit constant 4 folded in; for expanders (t_rel = O(1)) this is
    the O(n log n) regime the paper highlights for Corollary 1.
    """
    n = graph.n
    return 4.0 * relaxation_time(graph) * n * math.log(max(n, 2))
