"""Graph families used throughout the paper's discussion and our benchmarks.

Each generator returns a :class:`~repro.graphs.core.WeightedGraph` on
vertices ``0..n-1``. The families were chosen directly from the paper:

- expanders and Erdos-Renyi ``G(n, p)`` with ``p = Omega(log n / n)`` have
  ``O(n log n)`` cover time (Section 1.2, after Corollary 1);
- ``K_{n - sqrt(n), sqrt(n)}`` is the paper's example of a *dense, highly
  irregular* graph that still has ``O(n log n)`` cover time;
- the lollipop graph realizes the ``Theta(n^3)`` worst-case cover time that
  motivates the Theta~(n^3) nominal walk length;
- :func:`figure2_graph` is the exact 4-vertex example of Figure 2 used to
  validate Schur-complement and shortcut-graph transition values;
- :func:`cycle_with_chord` / :func:`theta_graph` are the small graphs on
  which the Section 1.4 random-weight-MST strawman is provably non-uniform.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "wheel_graph",
    "grid_graph",
    "binary_tree_graph",
    "lollipop_graph",
    "barbell_graph",
    "cycle_with_chord",
    "theta_graph",
    "figure2_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "complete_bipartite_unbalanced",
]


def _require_n(n: int, minimum: int) -> None:
    if n < minimum:
        raise GraphError(f"graph family requires n >= {minimum}, got {n}")


def path_graph(n: int) -> WeightedGraph:
    """Path ``0 - 1 - ... - (n-1)``; cover time Theta(n^2)."""
    _require_n(n, 1)
    return WeightedGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> WeightedGraph:
    """Cycle on ``n >= 3`` vertices; exactly ``n`` spanning trees."""
    _require_n(n, 3)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return WeightedGraph.from_edges(n, edges)


def complete_graph(n: int) -> WeightedGraph:
    """Complete graph ``K_n``; ``n^(n-2)`` spanning trees (Cayley)."""
    _require_n(n, 1)
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return WeightedGraph.from_edges(n, edges)


def star_graph(n: int) -> WeightedGraph:
    """Star with hub ``0`` and ``n - 1`` leaves.

    The star is the canonical *skewed* workload for the doubling algorithm:
    every second walk step is at the hub, so naive (non-load-balanced)
    doubling concentrates Theta(n) of the per-iteration traffic on one
    machine (motivating Section 3's load balancing).
    """
    _require_n(n, 2)
    return WeightedGraph.from_edges(n, [(0, i) for i in range(1, n)])


def wheel_graph(n: int) -> WeightedGraph:
    """Wheel: hub ``0`` plus an ``(n-1)``-cycle of rim vertices."""
    _require_n(n, 4)
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return WeightedGraph.from_edges(n, edges)


def grid_graph(rows: int, cols: int) -> WeightedGraph:
    """``rows x cols`` grid, vertex ``(r, c)`` numbered ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return WeightedGraph.from_edges(rows * cols, edges)


def binary_tree_graph(n: int) -> WeightedGraph:
    """Complete-ish binary tree on ``n`` vertices (heap numbering)."""
    _require_n(n, 1)
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return WeightedGraph.from_edges(n, edges)


def lollipop_graph(n: int, clique_fraction: float = 0.5) -> WeightedGraph:
    """Clique of ``k = max(3, round(n * clique_fraction))`` + pendant path.

    The lollipop is the standard witness for Theta(n^3) cover time (and
    Theta(mn) Aldous-Broder running time): a walk keeps getting sucked back
    into the clique before it can traverse the path. This is the family that
    justifies the paper's nominal walk length ell = Theta~(n^3).
    """
    _require_n(n, 4)
    k = max(3, int(round(n * clique_fraction)))
    k = min(k, n - 1)
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    # Path hangs off clique vertex k - 1.
    edges += [(i, i + 1) for i in range(k - 1, n - 1)]
    return WeightedGraph.from_edges(n, edges)


def barbell_graph(n: int) -> WeightedGraph:
    """Two cliques of ``floor(n/3)`` joined by a path through the middle."""
    _require_n(n, 6)
    k = n // 3
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    right = list(range(n - k, n))
    edges += [(u, v) for i, u in enumerate(right) for v in right[i + 1 :]]
    # Path from clique 1 (vertex k - 1) through middle to clique 2.
    path = [k - 1] + list(range(k, n - k)) + [n - k]
    edges += [(path[i], path[i + 1]) for i in range(len(path) - 1)]
    return WeightedGraph.from_edges(n, edges)


def cycle_with_chord(n: int, chord_span: int | None = None) -> WeightedGraph:
    """An ``n``-cycle plus one chord.

    With the chord from ``0`` to ``chord_span`` (default ``n // 2``) the
    spanning-tree distribution is easy to enumerate and the random-weight
    MST strawman of Section 1.4 is measurably biased: trees that drop a
    chord-side edge are over/under-represented relative to uniform.
    """
    _require_n(n, 4)
    span = n // 2 if chord_span is None else chord_span
    if not (2 <= span <= n - 2):
        raise GraphError(f"chord span must be in [2, n-2], got {span}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges.append((0, span))
    return WeightedGraph.from_edges(n, edges)


def theta_graph(a: int, b: int, c: int) -> WeightedGraph:
    """Theta graph: two terminals joined by three disjoint paths.

    Paths have ``a``, ``b`` and ``c`` internal edges respectively (each
    >= 1). Spanning trees = number of ways to cut exactly two of the three
    paths, giving a closed form ``a*b + b*c + a*c`` -- a convenient exact
    ground truth for uniformity tests.
    """
    for length in (a, b, c):
        if length < 1:
            raise GraphError("theta graph path lengths must be >= 1")
    # Vertex 0 and 1 are the terminals.
    n = 2 + (a - 1) + (b - 1) + (c - 1)
    edges: list[tuple[int, int]] = []
    next_vertex = 2
    for length in (a, b, c):
        previous = 0
        for _ in range(length - 1):
            edges.append((previous, next_vertex))
            previous = next_vertex
            next_vertex += 1
        edges.append((previous, 1))
    return WeightedGraph.from_edges(n, edges)


def figure2_graph() -> WeightedGraph:
    """The 4-vertex example of Figure 2 in the paper.

    Vertices ``A=0, B=1, C=2, D=3``; ``C`` is a hub adjacent to all of
    ``A, B, D`` and there are no other edges. With ``S = {A, B, D}``:

    - ``Schur(G, S)`` has uniform 1/2 transitions between every pair in S;
    - ``ShortCut(G, S)`` sends every vertex to ``C`` with probability 1.
    """
    return WeightedGraph.from_edges(4, [(0, 2), (1, 2), (3, 2)])


def random_regular_graph(
    n: int, degree: int, rng: np.random.Generator | None = None
) -> WeightedGraph:
    """Random ``degree``-regular graph (an expander w.h.p. for degree >= 3).

    Uses networkx's pairing-model generator, retrying until the multigraph
    collapse yields a connected simple graph. These graphs have
    ``O(n log n)`` cover time, the regime where Corollary 1 gives
    polylogarithmic-round spanning tree sampling.
    """
    _require_n(n, 4)
    if degree < 3:
        raise GraphError("expander generator requires degree >= 3")
    if n * degree % 2 != 0:
        raise GraphError("n * degree must be even for a regular graph")
    rng = np.random.default_rng(rng)
    for _ in range(100):
        seed = int(rng.integers(0, 2**31 - 1))
        candidate = nx.random_regular_graph(degree, n, seed=seed)
        graph = WeightedGraph.from_networkx(candidate)
        if graph.is_connected():
            return graph
    raise GraphError(
        f"failed to generate a connected {degree}-regular graph on {n} vertices"
    )


def erdos_renyi_graph(
    n: int,
    p: float | None = None,
    rng: np.random.Generator | None = None,
) -> WeightedGraph:
    """Connected ``G(n, p)`` sample; default ``p = 3 log n / n``.

    The default density sits safely above the connectivity threshold and in
    the ``O(n log n)``-cover-time regime highlighted after Corollary 1.
    """
    _require_n(n, 2)
    if p is None:
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
    if not (0.0 < p <= 1.0):
        raise GraphError(f"edge probability must be in (0, 1], got {p}")
    rng = np.random.default_rng(rng)
    for _ in range(200):
        upper = rng.random((n, n)) < p
        weights = np.triu(upper, k=1).astype(np.float64)
        weights = weights + weights.T
        graph = WeightedGraph(weights, validate=False)
        if graph.is_connected():
            return graph
    raise GraphError(
        f"failed to generate a connected G({n}, {p}) sample; p too small?"
    )


def complete_bipartite_unbalanced(n: int) -> WeightedGraph:
    """``K_{n - k, k}`` with ``k = floor(sqrt(n))``.

    The paper's example (Section 1.2) of a dense, highly irregular graph
    with ``O(n log n)`` cover time by coupon collecting: the small side has
    only ``sqrt(n)`` vertices but every walk step alternates sides.
    """
    _require_n(n, 4)
    k = max(1, int(math.isqrt(n)))
    small = list(range(n - k, n))
    edges = [(u, v) for u in range(n - k) for v in small]
    return WeightedGraph.from_edges(n, edges)
