"""Shortcut graphs (Definition 3, Corollary 2, Algorithm 4 support).

``ShortCut(G, S)`` is the directed weighted graph on ``V`` whose transition
matrix ``Q`` satisfies

    Q[u, v] = Pr[ x_{j-1} = v ]   where j = min{ i > 0 : x_i in S }

for a walk ``x_0 = u, x_1, ...`` on G: the law of the vertex visited
*immediately before* the walk's first (time >= 1) entry into S. The sampler
uses Q with Bayes' rule to recover first-visit edges in G from transitions
of the Schur walk (Section 2.2).

Two constructions:

- :func:`shortcut_transition_matrix` -- exact, via the fundamental matrix
  of the "entering S absorbs" chain: with ``Ptilde`` equal to P with all
  columns in S zeroed, ``G = (I - Ptilde)^{-1}`` counts expected
  pre-absorption visits, and ``Q[u, v] = G[u, v] * P[v, S]``.
- :func:`shortcut_via_power_iteration` -- the paper's own Corollary 2
  construction: a 2n-vertex auxiliary absorbing chain R whose limit
  ``R^inf[u', v'']`` equals ``Q[u, v]``, approximated by repeated squaring
  to subtractive error beta.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "shortcut_transition_matrix",
    "shortcut_via_power_iteration",
    "first_visit_edge_distribution",
]


def _subset_mask(n: int, subset: Sequence[int]) -> np.ndarray:
    s = sorted(set(int(v) for v in subset))
    if not s:
        raise GraphError("S must be non-empty")
    if s[0] < 0 or s[-1] >= n:
        raise GraphError(f"S contains out-of-range vertices for n={n}")
    mask = np.zeros(n, dtype=bool)
    mask[s] = True
    return mask


def shortcut_transition_matrix(
    graph: WeightedGraph, subset: Sequence[int]
) -> np.ndarray:
    """Exact ``Q`` for ``ShortCut(G, S)`` (Definition 3).

    Derivation: the pre-absorption visit counts of the chain that stops on
    entering S are ``G = sum_t Ptilde^t = (I - Ptilde)^{-1}`` (the ``t = 0``
    term covers ``j = 1``, where ``x_{j-1} = x_0 = u``). Conditioning each
    visit on stepping into S next gives ``Q[u, v] = G[u, v] * P[v, S]``.
    Rows of Q sum to 1 whenever every vertex can reach S.
    """
    mask = _subset_mask(graph.n, subset)
    transition = graph.transition_matrix()
    into_s = transition[:, mask].sum(axis=1)
    p_tilde = transition.copy()
    p_tilde[:, mask] = 0.0
    identity = np.eye(graph.n)
    try:
        visits = np.linalg.inv(identity - p_tilde)
    except np.linalg.LinAlgError as exc:
        raise GraphError(
            "shortcut matrix undefined: some vertex cannot reach S"
        ) from exc
    q = visits * into_s[None, :]
    row_sums = q.sum(axis=1)
    if np.any(row_sums < 1.0 - 1e-6):
        raise GraphError(
            "shortcut matrix rows do not sum to 1; S unreachable from "
            "some vertex"
        )
    return q / row_sums[:, None]


def shortcut_via_power_iteration(
    graph: WeightedGraph,
    subset: Sequence[int],
    *,
    beta: float = 1e-12,
    max_squarings: int = 128,
) -> np.ndarray:
    """Corollary 2's CongestedClique-friendly approximation of ``Q``.

    Builds the auxiliary chain on ``L + R`` copies of V:

        R[u'', u''] = 1                      (absorbed states)
        R[u', v'] = P[u, v]   if v not in S  (keep walking)
        R[u', u''] = P[u, S]                 (about to enter S -> absorb at u)

    and repeatedly squares it; ``R^inf[u', v''] = Q[u, v]``. Squaring stops
    once successive iterates differ by at most ``beta`` (subtractive
    under-approximation, as in the paper's error analysis).
    """
    if not (0 < beta < 1):
        raise GraphError(f"beta must be in (0, 1), got {beta}")
    mask = _subset_mask(graph.n, subset)
    n = graph.n
    transition = graph.transition_matrix()
    into_s = transition[:, mask].sum(axis=1)
    aux = np.zeros((2 * n, 2 * n))
    # L copies occupy indices 0..n-1, R copies n..2n-1.
    aux[:n, :n] = transition
    aux[:n, mask.nonzero()[0]] = 0.0  # steps into S are redirected ...
    aux[np.arange(n), n + np.arange(n)] = into_s  # ... to the absorbing copy
    aux[n + np.arange(n), n + np.arange(n)] = 1.0
    current = aux
    for _ in range(max_squarings):
        squared = current @ current
        if np.max(np.abs(squared - current)) <= beta:
            current = squared
            break
        current = squared
    q = current[:n, n:]
    row_sums = q.sum(axis=1)
    if np.any(row_sums < 0.5):
        raise GraphError(
            "power iteration failed to absorb; is S reachable everywhere?"
        )
    return q / row_sums[:, None]


def first_visit_edge_distribution(
    graph: WeightedGraph,
    subset: Sequence[int],
    shortcut,
    prev_s_vertex: int,
    new_vertex: int,
    *,
    weight_into_s: np.ndarray | None = None,
) -> tuple[list[int], np.ndarray]:
    """Algorithm 4's Bayes-rule law for a first-visit edge.

    Given that the Schur walk stepped ``prev_s_vertex -> new_vertex`` (the
    first visit to ``new_vertex``), the G-edge ``(u, new_vertex)`` used to
    enter ``new_vertex`` has

        Pr[u] proportional to Q[prev, u] * w(u, new_vertex) / w_S(u)

    over G-neighbors ``u`` of ``new_vertex`` (for unweighted graphs the
    ratio is the paper's ``1 / deg_S(u)``). ``shortcut`` may be a dense
    array or a scipy CSR matrix (the linalg backends hand over either).
    Returns (neighbors, probabilities).

    ``weight_into_s`` optionally carries the precomputed per-vertex
    into-S weights ``graph.weights[:, S].sum(axis=1)``: the vector is a
    function of ``(G, S)`` only, so a phase drawing several first-visit
    edges (one per new vertex) can compute it once instead of per edge.
    The per-row pairwise sums are the ones this function would compute
    itself, so passing it never changes the sampled law.
    """
    from repro.linalg.backend import matrix_row

    mask = _subset_mask(graph.n, subset)
    if not mask[new_vertex]:
        raise GraphError(f"new vertex {new_vertex} must lie in S")
    neighbors = list(graph.neighbors(new_vertex))
    if not neighbors:
        raise GraphError(f"vertex {new_vertex} has no neighbors")
    from_prev = matrix_row(shortcut, prev_s_vertex)
    # One vectorized pass over the neighbor rows. Each row's masked sum
    # uses the same pairwise reduction as the scalar per-vertex sum did,
    # so the probabilities (and therefore sampled trees) are bit-equal
    # to the historical per-neighbor Python loop -- which made this an
    # O(n^2)-per-edge hot spot at interpreter speed.
    neighbor_idx = np.asarray(neighbors, dtype=np.intp)
    if weight_into_s is None:
        into_s = graph.weights[neighbor_idx][:, mask].sum(axis=1)
    else:
        into_s = np.asarray(weight_into_s)[neighbor_idx]
    feasible = into_s > 0  # no S-neighbor => cannot be the entry edge
    weights = np.zeros(len(neighbors))
    np.divide(
        np.asarray(from_prev)[neighbor_idx]
        * graph.weights[neighbor_idx, new_vertex],
        into_s,
        out=weights,
        where=feasible,
    )
    total = weights.sum()
    if total <= 0:
        raise GraphError(
            f"no feasible first-visit edge into {new_vertex} from "
            f"{prev_s_vertex}; shortcut matrix inconsistent with S"
        )
    return neighbors, weights / total
