"""Matrix power ladders with bounded subtractive error (Lemma 7).

The sampler's Initialization Step computes ``P, P^2, P^4, ..., P^ell`` by
repeated squaring. Lemma 7 shows this is CongestedClique-feasible with
entries truncated to O(log(1/delta)) bits: define ``M'(1) = round(M)`` and
``M'(k) = round(M'(k/2)^2)``, where ``round`` truncates entries downward
(*subtractive* error at most delta). The error then obeys

    E(1) <= delta,      E(k) <= (n + 1) E(k/2) + delta,

so ``E(k) = O(delta * k^c log k)`` and choosing ``delta = Theta(beta /
(k^c log k))`` achieves subtractive error beta with O(log^2 n)-bit entries.

:class:`PowerLadder` implements exactly this, exposes every intermediate
power, and can charge the analytic matmul cost per squaring to a
:class:`~repro.clique.cost.RoundLedger`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.cost import RoundLedger
from repro.errors import GraphError, PrecisionError
from repro.linalg.backend import is_sparse_matrix, maybe_densify

__all__ = ["PowerLadder", "round_matrix_down", "lemma7_error_bound"]


def round_matrix_down(matrix, bits: int):
    """Truncate each entry down to ``bits`` fractional bits.

    This is the paper's ``round``: each entry incurs subtractive error in
    ``[0, 2^-bits)``. Entries are assumed non-negative (probabilities).
    Accepts dense arrays or scipy sparse matrices (implicit zeros floor
    to zero either way; entries truncated to zero are dropped from the
    sparse structure).
    """
    if bits < 1:
        raise PrecisionError(f"rounding needs at least 1 bit, got {bits}")
    scale = float(1 << bits) if bits < 63 else 2.0 ** bits
    if is_sparse_matrix(matrix):
        rounded = matrix.copy()
        rounded.data = np.floor(rounded.data * scale) / scale
        rounded.eliminate_zeros()
        return rounded
    return np.floor(matrix * scale) / scale


def lemma7_error_bound(n: int, k: int, delta: float) -> float:
    """Upper bound on ``E(k)`` from the Lemma 7 recurrence.

    Unrolls ``E(k) <= (n + 1) E(k/2) + delta`` exactly over the
    ``log2(k)`` squarings: ``E(k) <= delta * sum_{i=0}^{log k} (n+1)^i``.
    """
    if k < 1:
        raise GraphError(f"power k must be >= 1, got {k}")
    levels = max(0, math.ceil(math.log2(k)))
    total = 0.0
    term = 1.0
    for _ in range(levels + 1):
        total += term
        term *= n + 1
    return delta * total


class PowerLadder:
    """All powers ``M^(2^i)`` for ``i = 0 .. log2(ell)`` of a stochastic M.

    Parameters
    ----------
    matrix:
        The (row-stochastic) transition matrix P (or S for later phases).
    ell:
        Target power; must be a power of two >= 1.
    bits:
        Fractional bits kept after each squaring. ``None`` (default)
        disables rounding (full float64 precision -- the exact-arithmetic
        idealization of Sections 2.1-2.3). Lemma 7's regime corresponds to
        ``bits = O(log^2 n)``.
    ledger:
        Optional round ledger; when given, each squaring charges one
        matmul (entry width derived from ``bits``).
    matmul:
        Optional multiplication backend satisfying the
        :class:`~repro.engine.backends.MatmulBackend` protocol (e.g.
        :class:`repro.clique.matmul3d.SimulatedMatmul` or
        :class:`~repro.engine.backends.AnalyticMatmul`). When set,
        squarings run through it and *it* is responsible for round
        charges (the analytic ``ledger`` charge is skipped to avoid
        double counting). ``self.squarings`` and ``self.entry_words``
        record the charge recipe so caches can replay it.

    Notes
    -----
    Memory is ``(log2(ell) + 1)`` matrices of shape ``(n, n)``. Powers are
    retrieved with :meth:`power`; arbitrary (non-power-of-two) exponents
    are available through :meth:`power_any` via binary decomposition.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ell: int,
        *,
        bits: int | None = None,
        ledger: RoundLedger | None = None,
        matmul=None,
        note: str = "",
    ) -> None:
        if not is_sparse_matrix(matrix):
            matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"matrix must be square, got {matrix.shape}")
        if ell < 1 or (ell & (ell - 1)) != 0:
            raise GraphError(f"ell must be a power of two >= 1, got {ell}")
        self.n = matrix.shape[0]
        self.ell = ell
        self.bits = bits
        self._powers: dict[int, np.ndarray] = {}
        base = matrix if bits is None else round_matrix_down(matrix, bits)
        self._powers[1] = base
        entry_words = (
            None if bits is None else max(1, math.ceil(bits / math.log2(max(self.n, 2))))
        )
        k = 1
        self.squarings = 0
        self.entry_words = entry_words
        while k < ell:
            if matmul is not None:
                squared = matmul.multiply(
                    self._powers[k],
                    self._powers[k],
                    entry_words=entry_words,
                    note=note or f"P^{2 * k}",
                )
            else:
                squared = self._powers[k] @ self._powers[k]
            k *= 2
            self.squarings += 1
            if bits is not None:
                squared = round_matrix_down(squared, bits)
            # Sparse ladders densify once repeated squaring fills a power
            # past the CSR break-even point (values are unchanged).
            self._powers[k] = maybe_densify(squared)
            if ledger is not None and matmul is None:
                ledger.charge_matmul(
                    self.n, entry_words=entry_words, note=note or f"P^{k}"
                )

    # ------------------------------------------------------------------

    @classmethod
    def from_powers(
        cls,
        powers: dict[int, np.ndarray],
        *,
        ell: int,
        bits: int | None,
        squarings: int,
        entry_words: int | None,
    ) -> "PowerLadder":
        """Rebuild a ladder from already-computed powers (no matmuls).

        This is the deserialization path of the persistent derived-graph
        store (:mod:`repro.engine.store`): the powers were computed by a
        normal constructor call in some earlier process, so re-squaring
        them here would waste exactly the work the cache exists to skip.
        ``squarings`` / ``entry_words`` restore the charge recipe the
        cache replays; no ledger is charged by this constructor.
        """
        if ell < 1 or (ell & (ell - 1)) != 0:
            raise GraphError(f"ell must be a power of two >= 1, got {ell}")
        missing = [
            k for k in (2 ** i for i in range(ell.bit_length())) if k not in powers
        ]
        if missing:
            raise GraphError(
                f"ladder powers incomplete: missing exponents {missing}"
            )
        ladder = cls.__new__(cls)
        ladder.n = powers[1].shape[0]
        ladder.ell = ell
        ladder.bits = bits
        ladder._powers = dict(powers)
        ladder.squarings = squarings
        ladder.entry_words = entry_words
        return ladder

    @property
    def exponents(self) -> tuple[int, ...]:
        """Available power-of-two exponents, ascending."""
        return tuple(sorted(self._powers))

    def power(self, k: int) -> np.ndarray:
        """Return ``M^k`` for a power-of-two ``k <= ell``."""
        try:
            return self._powers[k]
        except KeyError:
            raise GraphError(
                f"power {k} not in ladder (available: {self.exponents})"
            ) from None

    def power_any(self, k: int) -> np.ndarray:
        """``M^k`` for arbitrary ``1 <= k <= ell`` by binary decomposition.

        Costs one extra multiplication per set bit; used only by analysis
        helpers, never on the sampler's hot path (which sticks to powers of
        two by construction).
        """
        if not (1 <= k <= self.ell):
            raise GraphError(f"power {k} outside [1, {self.ell}]")
        result: np.ndarray | None = None
        bit = 1
        while bit <= k:
            if k & bit:
                factor = self.power(bit)
                result = factor if result is None else result @ factor
            bit <<= 1
        assert result is not None
        return result

    def max_subtractive_error_bound(self) -> float:
        """Lemma 7 bound on the error of the top power (0.0 if exact)."""
        if self.bits is None:
            return 0.0
        delta = 2.0 ** (-self.bits)
        return lemma7_error_bound(self.n, self.ell, delta)
