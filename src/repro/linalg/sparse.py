"""CSR constructions of the derived graphs (the sparse backend's kernels).

The dense reference constructions in :mod:`repro.linalg.schur` and
:mod:`repro.linalg.shortcut` invert or solve full ``n x n`` systems even
when almost all of that work is structurally zero. Both derived graphs
are absorbing-chain objects, and the absorbing structure localizes them:

- **ShortCut(G, S)** counts visits *before* the walk enters S, so the
  fundamental matrix ``G = (I - Ptilde)^{-1}`` differs from the identity
  only on columns of ``C = V \\ S``: writing ``B = P[:, C]`` and
  ``K = P[C, C]``, the geometric series collapses to

      G = I + B (I_c - K)^{-1},

  a ``|C| x |C|`` solve instead of an ``n x n`` inverse
  (:func:`sparse_shortcut_matrix`). Early phases have tiny ``C``
  (the visited region), so this is the dominant saving.

- **Schur(G, S)** eliminates ``C``; the correction
  ``L_SC L_CC^{-1} L_CS`` is supported on the *boundary* of C (S-vertices
  adjacent to an eliminated vertex), because columns of ``L_CS`` for
  non-adjacent S-vertices are exactly zero and solving against an exactly
  zero right-hand side yields exactly zero. :func:`sparse_schur_transition`
  therefore solves only for the active boundary columns and scatters the
  small dense block back into CSR -- never materializing the |S| x |S|
  dense intermediate the block formula implies.

Both kernels evaluate the same formulas as their dense counterparts over
the same float64 inputs; entries can differ in final ulps only because
sparse accumulation orders sums differently than LAPACK/BLAS. Errors
mirror the dense constructions' :class:`~repro.errors.GraphError`
conditions one for one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

# The clip threshold and subset validation are shared with the dense
# reference constructions on purpose: both backends must agree on what
# counts as float noise and on S's canonical order, or the entrywise
# agreement contract (and the cross-backend identity tests) breaks.
from repro.linalg.schur import _CLIP, _validate_subset

try:  # pragma: no cover - the CI image ships scipy
    import scipy.sparse as sp
    from scipy.sparse.linalg import splu
except ImportError:  # pragma: no cover
    sp = None
    splu = None

__all__ = [
    "sparse_shortcut_matrix",
    "sparse_shortcut_via_power_iteration",
    "sparse_schur_complement_laplacian",
    "sparse_schur_transition",
    "sparse_schur_via_qr_product",
]


def _require_scipy() -> None:
    if sp is None:  # pragma: no cover - guarded by backend construction
        raise GraphError("sparse kernels require scipy")


def _complement(n: int, s: list[int]) -> np.ndarray:
    mask = np.ones(n, dtype=bool)
    mask[s] = False
    return np.flatnonzero(mask)


def _scale_rows(matrix, divisors: np.ndarray):
    """Divide each CSR row by its scalar divisor (exact ``a / b`` per entry).

    Uses true division on the stored data (not multiplication by a
    reciprocal) so entries match the dense path's ``row / divisor``
    bit for bit given equal inputs.
    """
    matrix = sp.csr_array(matrix)
    matrix.data = matrix.data / np.repeat(divisors, np.diff(matrix.indptr))
    return matrix


# ----------------------------------------------------------------------
# ShortCut(G, S)
# ----------------------------------------------------------------------


def sparse_shortcut_matrix(graph: WeightedGraph, subset: Sequence[int]):
    """Exact ``Q`` for ``ShortCut(G, S)`` as a CSR array (Definition 3).

    Uses the eliminated-block form ``G = I + P[:, C] (I_c - K)^{-1}``
    with ``K = P[C, C]``: only a ``|C| x |C|`` system is solved, and the
    result has at most ``n * (|C| + 1)`` stored entries. Agrees with
    :func:`repro.linalg.shortcut.shortcut_transition_matrix` entrywise
    (up to final-ulp accumulation order).
    """
    _require_scipy()
    n = graph.n
    s = _validate_subset(n, subset)
    complement = _complement(n, s)
    transition = graph.transition_matrix()
    in_s = np.zeros(n, dtype=bool)
    in_s[s] = True
    into_s = transition[:, in_s].sum(axis=1)

    if complement.size == 0:
        # S = V: the walk is absorbed on its first step, G = I.
        return sp.csr_array(sp.eye_array(n, format="csr"))

    b = transition[:, complement]  # n x c
    k = transition[np.ix_(complement, complement)]  # c x c
    identity_c = np.eye(complement.size)
    try:
        # M = B (I_c - K)^{-1}  <=>  M^T = (I_c - K)^{-T} B^T.
        visits_c = np.linalg.solve((identity_c - k).T, b.T).T  # n x c
    except np.linalg.LinAlgError as exc:
        raise GraphError(
            "shortcut matrix undefined: some vertex cannot reach S"
        ) from exc

    # Q[u, v] = G[u, v] * P[v, S]: a diagonal part on V (G's identity)
    # plus the dense-but-narrow eliminated-column block.
    diag = sp.dia_array((into_s[None, :], [0]), shape=(n, n))
    block = sp.csr_array(visits_c * into_s[complement][None, :])
    scatter = sp.csr_array(
        (
            block.data,
            complement[block.indices],
            block.indptr,
        ),
        shape=(n, n),
    )
    q = sp.csr_array(diag.tocsr() + scatter)
    row_sums = np.asarray(q.sum(axis=1)).ravel()
    if np.any(row_sums < 1.0 - 1e-6):
        raise GraphError(
            "shortcut matrix rows do not sum to 1; S unreachable from "
            "some vertex"
        )
    return _scale_rows(q, row_sums)


def sparse_shortcut_via_power_iteration(
    graph: WeightedGraph,
    subset: Sequence[int],
    *,
    beta: float = 1e-12,
    max_squarings: int = 128,
):
    """Corollary 2's 2n-state squaring iteration over CSR storage.

    Mirrors :func:`repro.linalg.shortcut.shortcut_via_power_iteration`
    but keeps the auxiliary chain sparse, densifying only if repeated
    squaring fills it in past the backend's fill threshold.
    """
    _require_scipy()
    from repro.linalg.backend import is_sparse_matrix, maybe_densify, to_dense

    if not (0 < beta < 1):
        raise GraphError(f"beta must be in (0, 1), got {beta}")
    n = graph.n
    s = _validate_subset(n, subset)
    mask = np.zeros(n, dtype=bool)
    mask[s] = True
    transition = graph.transition_matrix()
    into_s = transition[:, mask].sum(axis=1)
    # Assemble the 2n-state chain blockwise in sparse form (walk block
    # with S-columns zeroed, absorption diagonal, absorbed identity) --
    # never materializing the dense 2n x 2n array the reference
    # construction fills in.
    walk_block = sp.csr_array(np.where(mask[None, :], 0.0, transition))
    absorb = sp.dia_array((into_s[None, :], [0]), shape=(n, n))
    current = sp.csr_array(
        sp.block_array(
            [[walk_block, absorb], [None, sp.eye_array(n)]], format="csr"
        )
    )
    for _ in range(max_squarings):
        squared = current @ current
        delta = abs(squared - current)
        gap = delta.max() if is_sparse_matrix(delta) else np.max(delta)
        current = maybe_densify(squared)
        if gap <= beta:
            break
    dense = to_dense(current)
    q = dense[:n, n:]
    row_sums = q.sum(axis=1)
    if np.any(row_sums < 0.5):
        raise GraphError(
            "power iteration failed to absorb; is S reachable everywhere?"
        )
    return sp.csr_array(q / row_sums[:, None])


# ----------------------------------------------------------------------
# Schur(G, S)
# ----------------------------------------------------------------------


def sparse_schur_complement_laplacian(graph: WeightedGraph, subset: Sequence[int]):
    """Schur complement of ``L(G)`` onto ``subset`` as CSR (Definition 1).

    Returns ``(schur_csr, order)`` with ``order`` the sorted subset. The
    elimination correction is computed only for the boundary block (the
    S-vertices actually adjacent to eliminated vertices); all other
    entries are copied from ``L_SS`` untouched, exactly as the dense
    block formula would produce (zero right-hand sides solve to zero).
    """
    _require_scipy()
    n = graph.n
    s = _validate_subset(n, subset)
    complement = _complement(n, s)
    laplacian = sp.csr_array(graph.laplacian())
    l_ss = sp.csr_array(laplacian[s, :][:, s])
    if complement.size == 0:
        return l_ss, s

    l_cs = sp.csc_array(laplacian[complement, :][:, s])
    l_cc = sp.csc_array(laplacian[complement, :][:, complement])
    # Boundary: S-columns with any weight into the eliminated block
    # (non-empty columns of the CSC slice).
    active = np.flatnonzero(np.diff(l_cs.indptr))
    if active.size == 0:
        raise GraphError(
            "Schur complement undefined: eliminated block is singular "
            "(a component of V \\ S is disconnected from S)"
        )
    try:
        lu = splu(sp.csc_matrix(l_cc))
    except RuntimeError as exc:
        raise GraphError(
            "Schur complement undefined: eliminated block is singular "
            "(a component of V \\ S is disconnected from S)"
        ) from exc
    rhs = l_cs[:, active].toarray()
    solved = lu.solve(rhs)  # |C| x |a|
    if not np.all(np.isfinite(solved)):
        raise GraphError(
            "Schur complement undefined: eliminated block is singular "
            "(a component of V \\ S is disconnected from S)"
        )
    l_sc_active = sp.csr_array(laplacian[s, :][:, complement])[active, :]
    block = l_sc_active.toarray() @ solved  # |a| x |a| boundary correction
    rows = np.repeat(active, active.size)
    cols = np.tile(active, active.size)
    correction = sp.csr_array(
        (block.ravel(), (rows, cols)), shape=l_ss.shape
    )
    return sp.csr_array(l_ss - correction), s


def sparse_schur_transition(graph: WeightedGraph, subset: Sequence[int]):
    """Transition matrix of the walk on ``Schur(G, S)`` as CSR.

    Mirrors :func:`repro.linalg.schur.schur_transition_matrix`: weights
    are the negated off-diagonal Schur entries (float noise clipped at
    the same thresholds), symmetrized, then row-normalized.
    """
    schur, s = sparse_schur_complement_laplacian(graph, subset)
    weights = sp.csr_array(-schur)
    weights.setdiag(0.0)
    weights.data[np.abs(weights.data) < _CLIP] = 0.0
    if weights.nnz and np.any(weights.data < -1e-8):
        raise GraphError(
            "Schur complement produced significantly negative weights; "
            "input Laplacian was not a graph Laplacian"
        )
    weights.data = np.clip(weights.data, 0.0, None)
    weights = sp.csr_array((weights + weights.T) * 0.5)
    weights.eliminate_zeros()
    degrees = np.asarray(weights.sum(axis=1)).ravel()
    isolated = degrees <= 0
    safe = np.where(isolated, 1.0, degrees)
    transition = _scale_rows(weights, safe)
    if isolated.any():
        transition = sp.lil_array(transition)
        for idx in np.flatnonzero(isolated):
            transition[idx, idx] = 1.0
        transition = sp.csr_array(transition)
    return transition, s


def sparse_schur_via_qr_product(
    graph: WeightedGraph,
    subset: Sequence[int],
    shortcut_matrix=None,
):
    """Corollary 3's ``QR``-product Schur construction over CSR storage.

    ``R`` is assembled directly in sparse form (its rows have support
    only on S-neighborhoods), the product stays sparse, and the row
    normalization ``M_u = 1 / (1 - (QR)[u, u])`` is applied vectorized
    via a diagonal scaling instead of a per-row Python loop.
    """
    _require_scipy()
    n = graph.n
    s = _validate_subset(n, subset)
    if shortcut_matrix is None:
        shortcut_matrix = sparse_shortcut_matrix(graph, s)
    elif not sp.issparse(shortcut_matrix):
        shortcut_matrix = sp.csr_array(np.asarray(shortcut_matrix))
    weights = graph.weights
    in_s = np.zeros(n, dtype=bool)
    in_s[s] = True
    weight_into_s = weights[:, in_s].sum(axis=1)
    s_arr = np.asarray(s)

    # R row u: w(u, v) / w_S(u) over S-neighbors v, or the identity when
    # u has no weight into S. Assembled fully vectorized: scale the
    # n x |S| weight block row-wise, scatter its CSR columns back to the
    # global vertex ids, then add the identity rows.
    has_s = weight_into_s > 0
    divisors = np.where(has_s, weight_into_s, 1.0)
    block = sp.csr_array(
        np.where(has_s[:, None], weights[:, s_arr] / divisors[:, None], 0.0)
    )
    r = sp.csr_array(
        (block.data, s_arr[block.indices], block.indptr), shape=(n, n)
    )
    if np.any(~has_s):
        stranded = np.flatnonzero(~has_s)
        r = sp.csr_array(
            r
            + sp.csr_array(
                (np.ones(stranded.size), (stranded, stranded)), shape=(n, n)
            )
        )
    qr = sp.csr_array(shortcut_matrix @ r)
    sub = sp.csr_array(qr[s_arr, :][:, s_arr])
    stay = sub.diagonal()
    if np.any(stay >= 1.0 - 1e-12):
        offender = s[int(np.argmax(stay))]
        raise GraphError(
            f"vertex {offender} never reaches S \\ {{itself}}; "
            "Schur transition undefined"
        )
    sub.setdiag(0.0)
    sub.eliminate_zeros()
    return _scale_rows(sub, 1.0 - stay), s
