"""Per-machine sparse/dense crossover calibration.

The ``"auto"`` linalg backend picks sparse numerics when the instance is
large (``sparse_auto_min_n``) and the graph is sparse
(``sparse_auto_density``). Those two defaults were fitted from
``BENCH_sparse_scaling`` on *one* host; BLAS builds, core counts, and
memory bandwidth move the real crossover substantially between machines.

This module fits the crossover for the machine it runs on: a short timed
probe builds the same phase-2-shaped derived-graph bundle the benchmark
uses (ShortCut + Schur + a small power ladder) with both backends,

- over a ladder of sizes on the cycle family (bounded degree, the
  sparse backend's best case) to fit ``sparse_auto_min_n``, and
- over a ladder of densities on G(n, p) at the largest probed size to
  fit ``sparse_auto_density`` (the densest graph where sparse still
  wins),

and persists the fit as ``calibration.json`` inside the same persistence
directory as the tiered derived-graph store
(:func:`repro.engine.store.resolve_cache_root`). ``auto`` resolution
(:func:`repro.linalg.backend.auto_linalg_name`) consults the persisted
profile whenever the config points at a ``cache_dir`` and the user left
the crossover knobs at their class defaults -- explicit overrides always
win. Run it via ``python -m repro calibrate``.

Calibration never touches correctness: both backends compute identical
numbers (property-tested), so a stale or missing profile only costs
wall-clock, and a corrupt profile file is ignored exactly like a corrupt
cache blob.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CrossoverProfile",
    "PROFILE_FILENAME",
    "calibration_path",
    "load_profile",
    "save_profile",
    "profile_for_config",
    "run_calibration",
]

PROFILE_FILENAME = "calibration.json"
PROFILE_VERSION = 1

# The full probe ladder brackets the shipped defaults (min_n=192); the
# quick ladder keeps CI/test runs subsecond-ish at the cost of a coarser
# fit -- fine, since the profile only steers wall-clock.
FULL_PROBE_NS = (96, 128, 192, 256, 384)
QUICK_PROBE_NS = (48, 64, 96)
FULL_PROBE_DENSITIES = (0.05, 0.10, 0.20, 0.30, 0.40)
QUICK_PROBE_DENSITIES = (0.05, 0.20)
FULL_LADDER_ELL = 64
QUICK_LADDER_ELL = 16


@dataclass(frozen=True)
class CrossoverProfile:
    """A fitted per-host crossover plus the probe evidence behind it."""

    sparse_auto_min_n: int
    sparse_auto_density: float
    host: str = ""
    created: float = 0.0
    probe: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "sparse_auto_min_n": int(self.sparse_auto_min_n),
            "sparse_auto_density": float(self.sparse_auto_density),
            "host": str(self.host),
            "created": float(self.created),
            "probe": list(self.probe),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrossoverProfile":
        min_n = int(payload["sparse_auto_min_n"])
        density = float(payload["sparse_auto_density"])
        if min_n < 2 or not (0.0 < density <= 1.0):
            raise ValueError(f"implausible profile ({min_n}, {density})")
        return cls(
            sparse_auto_min_n=min_n,
            sparse_auto_density=density,
            host=str(payload.get("host", "")),
            created=float(payload.get("created", 0.0)),
            probe=list(payload.get("probe", [])),
        )


def calibration_path(root: str | os.PathLike) -> Path:
    """Where a persistence directory keeps its crossover profile."""
    return Path(root) / PROFILE_FILENAME


def save_profile(root: str | os.PathLike, profile: CrossoverProfile) -> Path:
    """Atomically persist a profile under ``root``; returns its path."""
    path = calibration_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(profile.to_dict(), indent=2) + "\n")
    os.replace(tmp, path)
    return path


def load_profile(root: str | os.PathLike) -> CrossoverProfile | None:
    """The persisted profile under ``root``, or None.

    Missing, unreadable, corrupt, or implausible files are all None --
    the profile is a wall-clock hint, so degraded state must never
    propagate past backend selection.
    """
    path = calibration_path(root)
    try:
        payload = json.loads(path.read_text())
        if payload.get("version") != PROFILE_VERSION:
            return None
        return CrossoverProfile.from_dict(payload)
    except (OSError, ValueError, TypeError, KeyError):
        return None


def profile_for_config(config) -> CrossoverProfile | None:
    """The profile a config's ``cache_dir`` carries, or None."""
    cache_dir = getattr(config, "cache_dir", None)
    if cache_dir is None:
        return None
    from repro.engine.store import resolve_cache_root

    return load_profile(resolve_cache_root(cache_dir))


# ----------------------------------------------------------------------
# The timed probe
# ----------------------------------------------------------------------


def _phase2_subset(graph) -> list[int]:
    """An S shaped like phase 2's: everything but a visited BFS ball.

    Mirrors ``benchmarks/bench_sparse_scaling.py``: the first phase
    visits ~sqrt(n) vertices around the start, which phase 2 then
    eliminates (minus the walk's endpoint).
    """
    from collections import deque

    n = graph.n
    ball_size = max(2, int(np.sqrt(n)))
    ball: list[int] = []
    seen = {0}
    queue = deque([0])
    while queue and len(ball) < ball_size:
        u = queue.popleft()
        ball.append(u)
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    eliminated = set(ball) - {ball[-1]}
    return sorted(set(range(n)) - eliminated)


def _bundle_seconds(graph, backend, ladder_ell: int, repeats: int) -> float:
    """Best-of-N wall-clock for one derived-graph bundle build."""
    from repro.linalg.matpow import PowerLadder

    subset = _phase2_subset(graph)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        shortcut = backend.shortcut_matrix(graph, subset)
        transition, _ = backend.schur_transition(graph, subset, shortcut)
        PowerLadder(transition, ladder_ell)
        best = min(best, time.perf_counter() - start)
    return best


def run_calibration(
    *,
    ns: tuple[int, ...] | None = None,
    densities: tuple[float, ...] | None = None,
    quick: bool = False,
    repeats: int | None = None,
    seed: int = 0,
) -> CrossoverProfile:
    """Fit this machine's crossover from a short timed probe.

    ``sparse_auto_min_n`` becomes the first probed size from which the
    sparse backend wins on the cycle family through the rest of the
    ladder (falling back to past-the-probe when dense always wins);
    ``sparse_auto_density`` becomes the densest probed G(n, p) density
    at which sparse still wins (falling back to a cycle-like density
    when it never does at the gnp sizes probed).
    """
    from repro.graphs.generators import cycle_graph, erdos_renyi_graph
    from repro.linalg.backend import HAVE_SCIPY, DenseLinalg, SparseLinalg

    if not HAVE_SCIPY:
        # Without scipy there is no sparse backend to cross over to.
        return CrossoverProfile(
            sparse_auto_min_n=1 << 30,
            sparse_auto_density=1e-9,
            host=platform.node(),
            created=time.time(),
            probe=[{"note": "scipy unavailable; sparse backend disabled"}],
        )

    ns = tuple(ns if ns is not None else (QUICK_PROBE_NS if quick else FULL_PROBE_NS))
    densities = tuple(
        densities
        if densities is not None
        else (QUICK_PROBE_DENSITIES if quick else FULL_PROBE_DENSITIES)
    )
    ladder_ell = QUICK_LADDER_ELL if quick else FULL_LADDER_ELL
    repeats = repeats if repeats is not None else (1 if quick else 3)
    dense, sparse = DenseLinalg(), SparseLinalg()
    rows: list[dict] = []

    wins: list[bool] = []
    for n in sorted(ns):
        graph = cycle_graph(n)
        dense_s = _bundle_seconds(graph, dense, ladder_ell, repeats)
        sparse_s = _bundle_seconds(graph, sparse, ladder_ell, repeats)
        wins.append(sparse_s < dense_s)
        rows.append(
            {
                "probe": "size",
                "family": "cycle",
                "n": int(n),
                "dense_seconds": round(dense_s, 6),
                "sparse_seconds": round(sparse_s, 6),
                "sparse_wins": bool(sparse_s < dense_s),
            }
        )
    sorted_ns = sorted(ns)
    min_n = 2 * sorted_ns[-1]  # dense never lost: keep auto dense past the probe
    for i in range(len(sorted_ns)):
        if all(wins[i:]):
            # First size from which sparse wins consistently; a single
            # noisy win below the true crossover must not drag min_n down.
            min_n = sorted_ns[i]
            break
    min_n = max(2, int(min_n))

    n_fit = sorted_ns[-1]
    density_cut = 0.0
    rng = np.random.default_rng(seed)
    for p in sorted(densities):
        graph = erdos_renyi_graph(n_fit, p=p, rng=rng)
        dense_s = _bundle_seconds(graph, dense, ladder_ell, repeats)
        sparse_s = _bundle_seconds(graph, sparse, ladder_ell, repeats)
        if sparse_s < dense_s:
            density_cut = max(density_cut, p)
        rows.append(
            {
                "probe": "density",
                "family": "gnp",
                "n": int(n_fit),
                "density": float(p),
                "dense_seconds": round(dense_s, 6),
                "sparse_seconds": round(sparse_s, 6),
                "sparse_wins": bool(sparse_s < dense_s),
            }
        )
    if density_cut <= 0.0:
        # Sparse never won a gnp probe; cycle-like inputs may still win
        # (the size probe says so), so keep a bounded-degree-scale cut.
        density_cut = min(0.05, 4.0 / n_fit)
    density_cut = float(min(1.0, max(1e-9, density_cut)))

    return CrossoverProfile(
        sparse_auto_min_n=min_n,
        sparse_auto_density=density_cut,
        host=platform.node(),
        created=time.time(),
        probe=rows,
    )
