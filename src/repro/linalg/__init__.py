"""Linear-algebra substrate: Schur complements, shortcut graphs, powers.

Implements Section 1.7 (definitions), Section 2.4 (CongestedClique
computation of the derived graphs) and Lemma 7 (matrix powers with bounded
subtractive error):

- :mod:`repro.linalg.schur` -- ``Schur(G, S)`` (Definitions 1 and 2) via
  block elimination, single-vertex elimination, and the Corollary-3
  QR-product construction;
- :mod:`repro.linalg.shortcut` -- ``ShortCut(G, S)`` (Definition 3) via
  the fundamental matrix and via Corollary 2's absorbing power iteration;
- :mod:`repro.linalg.matpow` -- the repeated-squaring power ladder with
  per-squaring entry rounding and the Lemma 7 error recurrence;
- :mod:`repro.linalg.backend` -- the sparse/dense dual-backend dispatch
  (:class:`~repro.linalg.backend.DenseLinalg` /
  :class:`~repro.linalg.backend.SparseLinalg`) plus the format-agnostic
  matrix accessors the walk layer consumes;
- :mod:`repro.linalg.sparse` -- the scipy CSR kernels behind the sparse
  backend (eliminated-block shortcut, boundary-block Schur complement).
"""

from repro.linalg.backend import (
    DenseLinalg,
    SparseLinalg,
    auto_linalg_name,
    is_sparse_matrix,
    matrix_col,
    make_linalg_backend,
    matrix_density,
    matrix_entry,
    matrix_nbytes,
    matrix_row,
    maybe_densify,
    resolve_linalg_backend,
    to_dense,
)
from repro.linalg.calibrate import (
    CrossoverProfile,
    load_profile,
    profile_for_config,
    run_calibration,
    save_profile,
)
from repro.linalg.matpow import (
    PowerLadder,
    lemma7_error_bound,
    round_matrix_down,
)
from repro.linalg.schur import (
    first_hit_distribution,
    schur_complement_graph,
    schur_complement_laplacian,
    schur_by_elimination,
    schur_transition_matrix,
    schur_via_qr_product,
)
from repro.linalg.shortcut import (
    first_visit_edge_distribution,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)

__all__ = [
    "DenseLinalg",
    "SparseLinalg",
    "auto_linalg_name",
    "is_sparse_matrix",
    "make_linalg_backend",
    "matrix_col",
    "matrix_density",
    "matrix_entry",
    "matrix_nbytes",
    "matrix_row",
    "maybe_densify",
    "resolve_linalg_backend",
    "to_dense",
    "CrossoverProfile",
    "load_profile",
    "profile_for_config",
    "run_calibration",
    "save_profile",
    "PowerLadder",
    "lemma7_error_bound",
    "round_matrix_down",
    "first_hit_distribution",
    "schur_complement_graph",
    "schur_complement_laplacian",
    "schur_by_elimination",
    "schur_transition_matrix",
    "schur_via_qr_product",
    "first_visit_edge_distribution",
    "shortcut_transition_matrix",
    "shortcut_via_power_iteration",
]
