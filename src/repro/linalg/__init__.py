"""Linear-algebra substrate: Schur complements, shortcut graphs, powers.

Implements Section 1.7 (definitions), Section 2.4 (CongestedClique
computation of the derived graphs) and Lemma 7 (matrix powers with bounded
subtractive error):

- :mod:`repro.linalg.schur` -- ``Schur(G, S)`` (Definitions 1 and 2) via
  block elimination, single-vertex elimination, and the Corollary-3
  QR-product construction;
- :mod:`repro.linalg.shortcut` -- ``ShortCut(G, S)`` (Definition 3) via
  the fundamental matrix and via Corollary 2's absorbing power iteration;
- :mod:`repro.linalg.matpow` -- the repeated-squaring power ladder with
  per-squaring entry rounding and the Lemma 7 error recurrence.
"""

from repro.linalg.matpow import (
    PowerLadder,
    lemma7_error_bound,
    round_matrix_down,
)
from repro.linalg.schur import (
    first_hit_distribution,
    schur_complement_graph,
    schur_complement_laplacian,
    schur_by_elimination,
    schur_transition_matrix,
    schur_via_qr_product,
)
from repro.linalg.shortcut import (
    first_visit_edge_distribution,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)

__all__ = [
    "PowerLadder",
    "lemma7_error_bound",
    "round_matrix_down",
    "first_hit_distribution",
    "schur_complement_graph",
    "schur_complement_laplacian",
    "schur_by_elimination",
    "schur_transition_matrix",
    "schur_via_qr_product",
    "first_visit_edge_distribution",
    "shortcut_transition_matrix",
    "shortcut_via_power_iteration",
]
