"""Schur complement graphs (Definitions 1-2, Corollary 3).

``Schur(G, S)`` is the weighted graph on vertex set ``S`` whose Laplacian is
the Schur complement of ``L(G)`` onto ``S``:

    Schur(L, S) = L_SS - L_{S,Sbar} (L_{Sbar,Sbar})^{-1} L_{Sbar,S}.

Its random walk is distributionally identical to the S-restriction of the
walk on G (Theorem 2.4 of Schild [69], quoted as the motivation for
Definition 1), which is exactly what the sampler's later phases need to skip
over already-visited vertices.

Three independent constructions are provided and cross-validated in tests:

- :func:`schur_complement_laplacian` -- direct block elimination (the
  definition);
- :func:`schur_by_elimination` -- one-vertex-at-a-time Gaussian elimination
  (Kyng [55], Section 2.3.3), numerically the "star-to-clique" chain;
- :func:`schur_via_qr_product` -- the paper's own CongestedClique route
  (Corollary 3): off-diagonal entries of the transition matrix are
  proportional to ``(Q R)[u, v]`` with Q the shortcut matrix, normalized by
  ``M_u = 1 / (1 - (QR)[u, u])``.

:func:`first_hit_distribution` computes Definition 2 directly from an
absorbing chain and is the semantic ground truth for all of the above.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "schur_complement_laplacian",
    "schur_complement_graph",
    "schur_by_elimination",
    "schur_transition_matrix",
    "schur_via_qr_product",
    "first_hit_distribution",
]

_CLIP = 1e-13


def _validate_subset(n: int, subset: Sequence[int]) -> list[int]:
    s = sorted(set(int(v) for v in subset))
    if not s:
        raise GraphError("S must be non-empty")
    if s[0] < 0 or s[-1] >= n:
        raise GraphError(f"S contains out-of-range vertices for n={n}")
    return s


def schur_complement_laplacian(
    laplacian: np.ndarray, subset: Sequence[int]
) -> np.ndarray:
    """Schur complement of a Laplacian onto ``subset`` (Definition 1).

    Returns the ``|S| x |S|`` matrix ``L_SS - L_SC L_CC^{-1} L_CS`` in the
    sorted order of ``subset``. When ``subset`` is everything, returns the
    input unchanged. ``L_CC`` is invertible whenever every eliminated
    component touches S (true for connected graphs).
    """
    n = laplacian.shape[0]
    s = _validate_subset(n, subset)
    complement = [v for v in range(n) if v not in set(s)]
    if not complement:
        return np.asarray(laplacian, dtype=np.float64).copy()
    l_ss = laplacian[np.ix_(s, s)]
    l_sc = laplacian[np.ix_(s, complement)]
    l_cs = laplacian[np.ix_(complement, s)]
    l_cc = laplacian[np.ix_(complement, complement)]
    try:
        solved = np.linalg.solve(l_cc, l_cs)
    except np.linalg.LinAlgError as exc:
        raise GraphError(
            "Schur complement undefined: eliminated block is singular "
            "(a component of V \\ S is disconnected from S)"
        ) from exc
    return l_ss - l_sc @ solved


def schur_complement_graph(
    graph: WeightedGraph, subset: Sequence[int]
) -> tuple[WeightedGraph, list[int]]:
    """``Schur(G, S)`` as a graph (Definition 1).

    Returns ``(H, order)`` where ``H`` is a WeightedGraph on ``|S|``
    vertices and ``order[i]`` is the original identity of H's vertex ``i``
    (sorted ``subset``). Fact 2.3.6 of [55]: the complement of a Laplacian
    is a Laplacian, so ``H``'s weights are the negated off-diagonal entries
    (clipped at 0 to absorb float noise).
    """
    s = _validate_subset(graph.n, subset)
    schur = schur_complement_laplacian(graph.laplacian(), s)
    weights = -schur
    np.fill_diagonal(weights, 0.0)
    weights[np.abs(weights) < _CLIP] = 0.0
    if np.any(weights < -1e-8):
        raise GraphError(
            "Schur complement produced significantly negative weights; "
            "input Laplacian was not a graph Laplacian"
        )
    weights = np.clip(weights, 0.0, None)
    weights = (weights + weights.T) / 2.0
    return WeightedGraph(weights, validate=False), s


def schur_by_elimination(
    graph: WeightedGraph, subset: Sequence[int]
) -> tuple[WeightedGraph, list[int]]:
    """``Schur(G, S)`` by eliminating one vertex of ``V \\ S`` at a time.

    Gaussian elimination on the Laplacian is associative, so eliminating
    vertices singly must agree with block elimination -- a strong numerical
    cross-check, and the textbook "replace eliminated vertex by a clique on
    its neighbors" operation of [55].
    """
    s = _validate_subset(graph.n, subset)
    keep = set(s)
    weights = graph.weights.copy()
    alive = list(range(graph.n))
    for victim in [v for v in range(graph.n) if v not in keep]:
        idx = alive.index(victim)
        w_row = weights[idx, :].copy()
        degree = w_row.sum()
        if degree <= 0:
            raise GraphError(
                f"vertex {victim} is isolated from S; Schur complement undefined"
            )
        remaining = [i for i in range(len(alive)) if i != idx]
        w_others = w_row[remaining]
        # Star-to-clique: new weight between a, b += w(v,a) w(v,b) / deg(v).
        update = np.outer(w_others, w_others) / degree
        sub = weights[np.ix_(remaining, remaining)] + update
        np.fill_diagonal(sub, 0.0)
        weights = sub
        alive = [alive[i] for i in remaining]
    if alive != s:
        raise GraphError("elimination order bookkeeping failed")  # pragma: no cover
    weights[np.abs(weights) < _CLIP] = 0.0
    return WeightedGraph(weights, validate=False), s


def schur_transition_matrix(
    graph: WeightedGraph, subset: Sequence[int]
) -> tuple[np.ndarray, list[int]]:
    """Transition matrix of the walk on ``Schur(G, S)`` (Definition 2).

    ``S[u, v]`` = probability that ``v`` is the first vertex of
    ``S \\ {u}`` visited by a walk on G started at ``u``. Computed from the
    Schur complement graph; validated against
    :func:`first_hit_distribution` in tests.
    """
    schur_graph, order = schur_complement_graph(graph, subset)
    return schur_graph.transition_matrix().copy(), order


def first_hit_distribution(
    graph: WeightedGraph, subset: Sequence[int], start: int
) -> np.ndarray:
    """Definition 2 computed directly: absorbing-chain first-hit law.

    Returns a length-``|S|`` probability vector over sorted ``subset``:
    entry ``j`` is the probability that ``subset[j]`` is the first vertex
    of ``S \\ {start}`` a walk from ``start`` visits. The ``start`` entry
    is 0 (the paper's S has no self transitions).
    """
    s = _validate_subset(graph.n, subset)
    if start not in s:
        raise GraphError(f"start vertex {start} must lie in S")
    transition = graph.transition_matrix()
    absorbing = [v for v in s if v != start]
    transient = [v for v in range(graph.n) if v not in set(absorbing)]
    q = transition[np.ix_(transient, transient)]
    r = transition[np.ix_(transient, absorbing)]
    start_idx = transient.index(start)
    identity = np.eye(len(transient))
    try:
        absorbed = np.linalg.solve(identity - q, r)
    except np.linalg.LinAlgError as exc:
        raise GraphError(
            "first-hit distribution undefined: S unreachable from start"
        ) from exc
    row = absorbed[start_idx]
    result = np.zeros(len(s))
    for j, v in enumerate(s):
        if v != start:
            result[j] = row[absorbing.index(v)]
    total = result.sum()
    if total <= 0:
        raise GraphError("walk never reaches S \\ {start}")
    return result / total


def schur_via_qr_product(
    graph: WeightedGraph,
    subset: Sequence[int],
    shortcut_matrix: np.ndarray | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Corollary 3's construction of the Schur transition matrix.

    With ``Q`` the ShortCut(G, S) transition matrix and ``R`` the
    one-step-into-S matrix

        R[u, v] = 1                 if u = v and deg_S(u) = 0
        R[u, v] = w(u, v) / w_S(u)  if {u, v} in E and v in S
        R[u, v] = 0                 otherwise

    the Schur walk satisfies ``S[u, v] = M_u (QR)[u, v]`` for ``u != v``
    with ``M_u = 1 / (1 - (QR)[u, u])``. (``w_S(u)`` is the weight from
    ``u`` into S; for unweighted graphs this is the paper's ``deg_S(u)``.)
    """
    from repro.linalg.shortcut import shortcut_transition_matrix

    s = _validate_subset(graph.n, subset)
    if shortcut_matrix is None:
        shortcut_matrix = shortcut_transition_matrix(graph, s)
    n = graph.n
    weights = graph.weights
    in_s = np.zeros(n, dtype=bool)
    in_s[s] = True
    weight_into_s = weights[:, in_s].sum(axis=1)
    r = np.zeros((n, n))
    for u in range(n):
        if weight_into_s[u] <= 0:
            r[u, u] = 1.0
        else:
            r[u, in_s] = weights[u, in_s] / weight_into_s[u]
    qr = shortcut_matrix @ r
    sub = qr[np.ix_(s, s)].copy()
    transition = np.zeros_like(sub)
    for i in range(len(s)):
        stay = sub[i, i]
        if stay >= 1.0 - 1e-12:
            raise GraphError(
                f"vertex {s[i]} never reaches S \\ {{itself}}; "
                "Schur transition undefined"
            )
        row = sub[i].copy()
        row[i] = 0.0
        transition[i] = row / (1.0 - stay)
    return transition, s
