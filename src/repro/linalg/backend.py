"""The sparse/dense dual-backend numerics layer (``LinalgBackend``).

Every heavy matrix object the sampler touches -- transition matrices,
ShortCut(G, S) matrices, Schur complements, power-ladder entries -- used
to be a dense ``(n, n)`` numpy array, so wall-clock and memory grew
quadratically with ``n`` regardless of how sparse the input graph was.
This module introduces the dispatch point between two realizations:

- :class:`DenseLinalg` -- the reference path: plain numpy arrays and the
  existing LAPACK-backed constructions in :mod:`repro.linalg.schur` and
  :mod:`repro.linalg.shortcut`, byte-for-byte the seed behavior.
- :class:`SparseLinalg` -- ``scipy.sparse`` CSR matrices and the
  elimination-based constructions in :mod:`repro.linalg.sparse`, which
  exploit the block structure of the absorbing chains (visits before
  entering S are confined to the eliminated region) to replace the
  O(n^3) dense inverses with solves against the much smaller eliminated
  block.

Selection: :func:`resolve_linalg_backend` honours the explicit
``SamplerConfig.linalg_backend`` override and otherwise auto-selects by
graph size and density (``sparse_auto_min_n`` / ``sparse_auto_density``)
-- dense for small or dense instances where BLAS wins, sparse for large
sparse families where the asymptotics win. The executable
``simulated-3d`` matmul protocol is defined over dense word matrices,
so it always pairs with the dense backend.

Numerical contract: both backends evaluate the same formulas over the
same float64 inputs, so sampled trees and (analytic) round bills agree
for the same seed; cross-backend property tests pin byte-identical
trees and ledgers at n <= 128 across every registered graph family.
Individual matrix entries may differ in final ulps (sparse kernels
accumulate sums in a different order than BLAS), which is why the
backend is part of the derived-graph cache key.

The module-level helpers (:func:`matrix_row`, :func:`matrix_col`,
:func:`to_dense`, ...) are the format-agnostic accessors the walk layer
uses instead of raw ``matrix[i, j]`` indexing, so the same walk code
consumes whichever matrix type the backend hands it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

try:  # pragma: no cover - exercised implicitly by every sparse test
    import scipy.sparse as _sp

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the CI image ships scipy
    _sp = None
    HAVE_SCIPY = False

__all__ = [
    "HAVE_SCIPY",
    "LINALG_BACKENDS",
    "DenseLinalg",
    "SparseLinalg",
    "auto_linalg_name",
    "make_linalg_backend",
    "resolve_linalg_backend",
    "is_sparse_matrix",
    "to_dense",
    "matrix_row",
    "matrix_col",
    "matrix_entry",
    "matrix_density",
    "matrix_nbytes",
    "maybe_densify",
]

LINALG_BACKENDS = ("auto", "dense", "sparse")

# A sparse intermediate denser than this is converted back to a numpy
# array: beyond ~1/4 fill, CSR products cost more than BLAS and the index
# arrays cost more memory than they save. Power ladders hit this quickly
# (P^k fills in as k grows); the guard keeps the sparse backend from ever
# being asymptotically worse than the dense one.
DENSIFY_FILL = 0.25


# ----------------------------------------------------------------------
# Format-agnostic matrix accessors (the walk layer's vocabulary)
# ----------------------------------------------------------------------


def is_sparse_matrix(matrix) -> bool:
    """True when ``matrix`` is a scipy sparse container."""
    return HAVE_SCIPY and _sp.issparse(matrix)


def to_dense(matrix) -> np.ndarray:
    """``matrix`` as a dense ndarray (no copy when already dense)."""
    if is_sparse_matrix(matrix):
        return matrix.toarray()
    return np.asarray(matrix)


def matrix_row(matrix, i: int) -> np.ndarray:
    """Row ``i`` as a dense 1-D vector (a view for dense inputs)."""
    if is_sparse_matrix(matrix):
        return matrix[[i], :].toarray().ravel()
    return matrix[i, :]


def matrix_col(matrix, j: int) -> np.ndarray:
    """Column ``j`` as a dense 1-D vector (a view for dense inputs)."""
    if is_sparse_matrix(matrix):
        return matrix[:, [j]].toarray().ravel()
    return matrix[:, j]


def matrix_entry(matrix, i: int, j: int) -> float:
    """Scalar entry ``[i, j]`` regardless of storage format."""
    return float(matrix[i, j])


def matrix_density(matrix) -> float:
    """Fraction of stored-nonzero entries (1.0 for dense arrays)."""
    rows, cols = matrix.shape
    size = rows * cols
    if size == 0:
        return 0.0
    if is_sparse_matrix(matrix):
        return matrix.nnz / size
    return float(np.count_nonzero(matrix)) / size

def matrix_nbytes(matrix) -> int:
    """Storage footprint in bytes regardless of format.

    Dense arrays (including disk-backed memmaps) report their buffer
    size; CSR containers report data + index arrays. This is the unit
    the byte-budgeted cache tiers account in.
    """
    if is_sparse_matrix(matrix):
        return int(
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )
    return int(np.asarray(matrix).nbytes)


def maybe_densify(matrix, threshold: float = DENSIFY_FILL):
    """Convert a sparse matrix back to dense once fill-in crosses ``threshold``.

    Dense inputs pass through untouched; values are preserved exactly
    either way (this changes storage, never numbers).
    """
    if is_sparse_matrix(matrix) and matrix.nnz > threshold * (
        matrix.shape[0] * matrix.shape[1]
    ):
        return matrix.toarray()
    return matrix


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class DenseLinalg:
    """Reference realization: numpy arrays + the LAPACK constructions."""

    name = "dense"

    def transition_matrix(self, graph):
        """The phase-1 walk matrix (a private dense copy)."""
        return graph.transition_matrix().copy()

    def shortcut_matrix(
        self, graph, subset, *, method: str = "solve", beta: float = 1e-12
    ):
        """``ShortCut(G, S)`` via the configured construction."""
        from repro.linalg.shortcut import (
            shortcut_transition_matrix,
            shortcut_via_power_iteration,
        )

        if method == "power-iteration":
            return shortcut_via_power_iteration(graph, subset, beta=beta)
        return shortcut_transition_matrix(graph, subset)

    def schur_transition(self, graph, subset, shortcut, *, method: str = "block"):
        """``Schur(G, S)`` transition matrix via the configured construction."""
        from repro.linalg.schur import (
            schur_transition_matrix,
            schur_via_qr_product,
        )

        if method == "qr-product":
            return schur_via_qr_product(graph, subset, shortcut_matrix=shortcut)
        return schur_transition_matrix(graph, subset)


class SparseLinalg:
    """CSR realization: scipy.sparse storage + elimination-block kernels."""

    name = "sparse"

    def __init__(self) -> None:
        if not HAVE_SCIPY:
            raise ConfigError(
                "linalg_backend='sparse' requires scipy; install scipy or "
                "use the dense backend"
            )

    def transition_matrix(self, graph):
        """Phase-1 walk matrix as CSR (entries identical to the dense P)."""
        return _sp.csr_array(graph.transition_matrix())

    def shortcut_matrix(
        self, graph, subset, *, method: str = "solve", beta: float = 1e-12
    ):
        from repro.linalg.sparse import (
            sparse_shortcut_matrix,
            sparse_shortcut_via_power_iteration,
        )

        if method == "power-iteration":
            return sparse_shortcut_via_power_iteration(graph, subset, beta=beta)
        return sparse_shortcut_matrix(graph, subset)

    def schur_transition(self, graph, subset, shortcut, *, method: str = "block"):
        from repro.linalg.sparse import (
            sparse_schur_transition,
            sparse_schur_via_qr_product,
        )

        if method == "qr-product":
            return sparse_schur_via_qr_product(
                graph, subset, shortcut_matrix=shortcut
            )
        return sparse_schur_transition(graph, subset)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


def _crossover_thresholds(config) -> tuple[int, float]:
    """The (min_n, density) crossover ``auto`` should apply for ``config``.

    The dataclass defaults were fitted on one host (BENCH_sparse_scaling);
    when the session points at a persistent cache directory that holds a
    :mod:`repro.linalg.calibrate` profile, that per-machine fit replaces
    them. An *explicit* override on the config always wins -- the profile
    only substitutes for values the user left at the class defaults.
    """
    from dataclasses import fields

    min_n = config.sparse_auto_min_n
    density = config.sparse_auto_density
    defaults = {
        f.name: f.default
        for f in fields(config)
        if f.name in ("sparse_auto_min_n", "sparse_auto_density")
    }
    if (
        min_n == defaults.get("sparse_auto_min_n")
        and density == defaults.get("sparse_auto_density")
        and getattr(config, "cache_dir", None) is not None
    ):
        from repro.linalg.calibrate import profile_for_config

        profile = profile_for_config(config)
        if profile is not None:
            min_n = profile.sparse_auto_min_n
            density = profile.sparse_auto_density
    return min_n, density


def auto_linalg_name(config, graph) -> str:
    """The backend ``"auto"`` resolves to for this (config, graph) pair.

    Sparse wins only when all of the following hold: scipy is available,
    the matmul realization is the analytic black box (the executable 3D
    protocol is a dense word-matrix simulation), the instance is large
    enough that CSR overhead amortizes (``sparse_auto_min_n``), and the
    input graph is actually sparse (``sparse_auto_density``). The two
    thresholds come from the config, or -- when the config carries the
    class defaults and names a persistent ``cache_dir`` holding a
    calibration profile -- from this machine's fitted crossover (see
    :mod:`repro.linalg.calibrate`).
    """
    if not HAVE_SCIPY:
        return "dense"
    if getattr(config, "matmul_backend", "analytic") == "simulated-3d":
        return "dense"
    min_n, max_density = _crossover_thresholds(config)
    n = graph.n
    if n < min_n:
        return "dense"
    # count_nonzero over the weight matrix, not graph.m: the latter
    # materializes the full edge tuple just to throw it away.
    density = float(np.count_nonzero(graph.weights)) / max(1, n * (n - 1))
    if density > max_density:
        return "dense"
    return "sparse"


def make_linalg_backend(name: str):
    """Instantiate a backend by its explicit name (``"dense"``/``"sparse"``).

    The single name->class mapping; every dispatch site (engine, the
    sequential samplers) goes through here so a new backend only has to
    be registered once. ``"sparse"`` raises
    :class:`~repro.errors.ConfigError` when scipy is missing rather
    than silently downgrading the numerics the caller asked for.
    """
    if name == "dense":
        return DenseLinalg()
    if name == "sparse":
        return SparseLinalg()
    raise ConfigError(
        f"unknown linalg backend {name!r}; explicit backends are "
        "'dense' and 'sparse' ('auto' resolves to one of them via "
        "resolve_linalg_backend)"
    )


def resolve_linalg_backend(config, graph):
    """Instantiate the backend named by ``config.linalg_backend``.

    ``"auto"`` defers to :func:`auto_linalg_name`; explicit names are
    honoured verbatim via :func:`make_linalg_backend`.
    """
    name = getattr(config, "linalg_backend", "dense")
    if name == "auto":
        name = auto_linalg_name(config, graph)
    return make_linalg_backend(name)
