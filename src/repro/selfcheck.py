"""Installation self-check: a fast battery of ground-truth assertions.

``python -m repro verify`` (or :func:`run_self_check`) exercises one
exemplar of every major subsystem against an exactly known answer:

1. Matrix-Tree counts on closed-form families (Cayley, cycles);
2. Foster's theorem on a random graph (electrical substrate);
3. the Figure 2 Schur/shortcut values (derived graphs);
4. a Ryser-vs-class-DP permanent identity (matching substrate);
5. Lenzen routing delivery + round constants (clique substrate);
6. one tree from each sampler, validated as a spanning tree;
7. a quick chi-square sanity on the Theorem-1 sampler.

Runs in a few seconds; each check reports pass/fail independently so a
broken environment (e.g. a miscompiled BLAS) is localized immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "run_self_check"]


@dataclass
class CheckResult:
    """Outcome of one named check."""

    name: str
    passed: bool
    detail: str = ""


def _check_matrix_tree() -> str:
    from repro import graphs
    from repro.graphs import count_spanning_trees

    cayley = count_spanning_trees(graphs.complete_graph(6))
    assert abs(cayley - 6**4) < 1e-6, f"K6 count {cayley} != 1296"
    cycle = count_spanning_trees(graphs.cycle_graph(9))
    assert abs(cycle - 9) < 1e-9, f"C9 count {cycle} != 9"
    return "Cayley 6^4 and C9 counts exact"


def _check_foster() -> str:
    from repro import graphs
    from repro.graphs import foster_sum

    g = graphs.erdos_renyi_graph(20, rng=np.random.default_rng(1))
    total = foster_sum(g)
    assert abs(total - 19) < 1e-7, f"Foster sum {total} != 19"
    return "Foster sum = n - 1 on G(20, p)"


def _check_figure2() -> str:
    from repro import graphs
    from repro.linalg import schur_transition_matrix, shortcut_transition_matrix

    g = graphs.figure2_graph()
    schur, _ = schur_transition_matrix(g, [0, 1, 3])
    assert np.allclose(schur, np.full((3, 3), 0.5) - 0.5 * np.eye(3))
    shortcut = shortcut_transition_matrix(g, [0, 1, 3])
    assert np.allclose(shortcut[:, 2], 1.0)
    return "Figure 2 Schur + shortcut values exact"


def _check_permanent() -> str:
    from repro.matching import permanent_class_dp, permanent_ryser

    rng = np.random.default_rng(2)
    weights = rng.random((2, 2))
    expanded = weights[np.ix_([0, 0, 1], [0, 1, 1])]
    dp = permanent_class_dp(weights, [2, 1], [1, 2])
    ryser = permanent_ryser(expanded)
    assert abs(dp - ryser) < 1e-9 * max(1.0, abs(ryser))
    return "class-DP permanent == Ryser on expansion"


def _check_routing() -> str:
    from repro.clique.lenzen import RoutedMessage, lenzen_route

    n = 8
    messages = [RoutedMessage(s, (s * 3 + 1) % n) for s in range(n)]
    outcome = lenzen_route(messages, n)
    delivered = sum(len(inbox) for inbox in outcome.inboxes.values())
    assert delivered == n, f"delivered {delivered} of {n}"
    assert outcome.rounds <= 3, f"{outcome.rounds} rounds for a permutation"
    return "Lenzen routing delivers in O(1) rounds"


def _check_samplers() -> str:
    from repro import graphs
    from repro.core import (
        CongestedCliqueTreeSampler,
        ExactTreeSampler,
        SamplerConfig,
        sample_tree_fast_cover,
    )
    from repro.graphs import is_spanning_tree

    rng = np.random.default_rng(3)
    g = graphs.cycle_with_chord(7)
    config = SamplerConfig(ell=1 << 10)
    for sampler in (
        CongestedCliqueTreeSampler(g, config).sample_tree,
        ExactTreeSampler(g, config).sample_tree,
        lambda r: sample_tree_fast_cover(g, r).tree,
    ):
        tree = sampler(rng)
        assert is_spanning_tree(g, tree)
    return "all three samplers produced valid trees"


def _check_uniformity() -> str:
    from repro import graphs
    from repro.analysis import chi_square_uniformity
    from repro.core import CongestedCliqueTreeSampler, SamplerConfig

    rng = np.random.default_rng(4)
    g = graphs.cycle_graph(5)
    sampler = CongestedCliqueTreeSampler(g, SamplerConfig(ell=1 << 10))
    trees = [sampler.sample_tree(rng) for _ in range(200)]
    __, p_value = chi_square_uniformity(g, trees)
    assert p_value > 1e-4, f"uniformity rejected (p = {p_value:.2e})"
    return f"chi-square sanity passed (p = {p_value:.2f})"


_CHECKS: dict[str, Callable[[], str]] = {
    "matrix-tree": _check_matrix_tree,
    "electrical": _check_foster,
    "derived-graphs": _check_figure2,
    "permanents": _check_permanent,
    "routing": _check_routing,
    "samplers": _check_samplers,
    "uniformity": _check_uniformity,
}


def run_self_check(*, verbose: bool = False) -> list[CheckResult]:
    """Run the whole battery; never raises, reports per-check results."""
    results = []
    for name, check in _CHECKS.items():
        try:
            detail = check()
            results.append(CheckResult(name, True, detail))
        except Exception as error:  # noqa: BLE001 - report, don't crash
            results.append(CheckResult(name, False, f"{error!r}"))
        if verbose:
            last = results[-1]
            status = "ok" if last.passed else "FAIL"
            print(f"[{status:>4s}] {last.name}: {last.detail}")
    return results


def main_cli() -> int:
    """CLI hook: print the battery and return a process exit code."""
    results = run_self_check(verbose=True)
    failed = [r for r in results if not r.passed]
    if failed:
        print(f"\n{len(failed)} of {len(results)} checks FAILED")
        return 1
    print(f"\nall {len(results)} checks passed")
    return 0
