"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``ValueError`` raised by numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph input violates a structural requirement.

    Raised, for example, when a sampler that requires a connected graph is
    handed a disconnected one, or when an adjacency matrix is not symmetric.
    """


class DisconnectedGraphError(GraphError):
    """The graph has no spanning tree because it is disconnected."""


class WeightError(GraphError):
    """Edge weights violate the paper's footnote-1 requirements.

    The paper allows positive integer edge weights bounded by W = O(n^beta);
    zero, negative, or non-finite weights are rejected.
    """


class FormatError(GraphError):
    """A serialized graph/tree document is malformed.

    Raised at *parse time* by :mod:`repro.graphs.io` -- with the file
    path and line number (edge lists) or edge index (JSON documents) --
    for problems that used to surface only much later as inscrutable
    failures deep inside phase numerics: duplicate edges, self-loops,
    out-of-range endpoints, non-positive weights, unparseable tokens,
    and empty documents.
    """


class ModelError(ReproError):
    """A CongestedClique model constraint was violated.

    Examples: a machine attempting to address a non-existent peer, or a
    message exceeding the O(log n)-bit word budget it declared.
    """


class BandwidthError(ModelError):
    """A single round exceeded the model's per-machine bandwidth.

    Lenzen routing guarantees delivery in O(1) rounds only when every machine
    sends and receives O(n) words; the simulator converts excess load into
    extra rounds, and raises this error only when accounting is impossible
    (e.g. a negative word count).
    """


class ProtocolError(ModelError):
    """Machines violated the algorithm's communication protocol.

    Raised when the simulated distributed state machine receives a message it
    cannot interpret -- this always indicates a bug in the algorithm
    implementation rather than bad user input.
    """


class SamplingError(ReproError):
    """A sampling subroutine could not produce a valid sample."""


class WalkError(SamplingError):
    """A random-walk construction failed an internal invariant.

    For example, a partial walk whose filled positions stop being uniformly
    spaced, or a truncation index that is not a filled position.
    """


class MatchingError(SamplingError):
    """Weighted perfect matching sampling failed.

    Raised when the bipartite instance admits no perfect matching of nonzero
    weight (the permanent of the biadjacency matrix is zero).
    """


class PrecisionError(ReproError):
    """Numerical precision fell below what Section 2.5 of the paper requires.

    The paper's Lemma 8 / Lemma 9 analysis assumes midpoint normalizers
    W^2[p, q] stay above 1/n^c; when a computed normalizer underflows past
    the configured floor the library raises this error (or, in exact mode,
    triggers the appendix's brute-force fallback).
    """


class ConfigError(ReproError):
    """A configuration object contains inconsistent or invalid settings."""
