"""PageRank estimation from short random walks (the Theorem 2 application).

The paper motivates its doubling machinery partly through PageRank: "walks
of length O(poly(log n)) are of particular interest for approximating
PageRank" (Section 1.2, citing Bahmani-Chakrabarti-Xin [7] and Lacki et
al. [57]). This module closes that loop:

- :func:`pagerank_exact` -- the reference stationary solution of the
  damped walk (dense linear solve);
- :func:`pagerank_via_walks` -- the Monte-Carlo estimator of [7]: run
  geometric-length random walks (restart probability ``1 - damping``)
  from every vertex and count terminal vertices. Walk segments come from
  :func:`repro.walks.doubling.doubling_random_walk`, so the whole
  estimator runs in the simulated CongestedClique at the Theorem 2 round
  cost for tau = O(log n) walks -- i.e. O(log tau) rounds per batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.clique.network import CongestedClique
from repro.errors import GraphError
from repro.graphs.core import WeightedGraph
from repro.walks.doubling import doubling_random_walk

__all__ = ["PageRankEstimate", "pagerank_exact", "pagerank_via_walks"]


def pagerank_exact(graph: WeightedGraph, damping: float = 0.85) -> np.ndarray:
    """Exact PageRank vector: ``pi = (1-d)/n * (I - d P^T)^{-1} 1``.

    Uses the standard uniform-teleport formulation over the (weighted)
    random-walk matrix P.
    """
    if not (0.0 < damping < 1.0):
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    n = graph.n
    transition = graph.transition_matrix()
    system = np.eye(n) - damping * transition.T
    scores = np.linalg.solve(system, np.full(n, (1.0 - damping) / n))
    return scores / scores.sum()


@dataclass
class PageRankEstimate:
    """Monte-Carlo PageRank estimate with its communication bill."""

    scores: np.ndarray
    walks_per_vertex: int
    walk_length: int
    rounds: int

    def l1_error(self, reference: np.ndarray) -> float:
        """L1 distance to a reference vector."""
        return float(np.abs(self.scores - reference).sum())


def pagerank_via_walks(
    graph: WeightedGraph,
    damping: float = 0.85,
    *,
    walks_per_vertex: int = 16,
    rng: np.random.Generator | None = None,
    clique: CongestedClique | None = None,
) -> PageRankEstimate:
    """Estimate PageRank by the terminal-vertex method of [7].

    Each logical walk starts at a vertex, and at every step stops with
    probability ``1 - damping``; the stationary frequency of *stopping*
    vertices is the PageRank vector. We realize it on top of doubling
    walks: build ``walks_per_vertex`` batches of length-L walks (L chosen
    so a geometric(1 - damping) length exceeds it with probability < 1/n),
    then truncate each at an independently drawn geometric stopping time.

    The per-batch round cost is the Theorem 2 short-walk regime
    (O(log L) = O(log log n + log(1/(1-d))) rounds) whenever L = O(n /
    log n).
    """
    graph.require_connected()
    if not (0.0 < damping < 1.0):
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    if walks_per_vertex < 1:
        raise GraphError("need at least one walk per vertex")
    rng = np.random.default_rng(rng)
    n = graph.n
    if clique is None:
        clique = CongestedClique(n)
    # Geometric tail: P(len > L) = damping^L < 1/n  =>  L > ln n / ln(1/d).
    length = max(4, math.ceil(math.log(max(n, 4)) / math.log(1.0 / damping)))

    counts = np.zeros(n, dtype=np.float64)
    rounds_before = clique.ledger.total_rounds()
    for _ in range(walks_per_vertex):
        batch = doubling_random_walk(graph, length, rng, clique=clique)
        stops = rng.geometric(1.0 - damping, size=n) - 1  # steps before stop
        for v in range(n):
            walk = batch.walks[v]
            stop = min(int(stops[v]), len(walk) - 1)
            counts[walk[stop]] += 1.0
    rounds = clique.ledger.total_rounds() - rounds_before
    scores = counts / counts.sum()
    return PageRankEstimate(
        scores=scores,
        walks_per_vertex=walks_per_vertex,
        walk_length=length,
        rounds=rounds,
    )
