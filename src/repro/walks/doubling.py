"""Load-balanced doubling random walks (Section 3, Theorem 2).

The Doubling algorithm of Bahmani, Chakrabarti, and Xin [7] builds a
length-tau walk in O(log tau) merge iterations: every vertex starts with k
length-1 walks; each iteration pairs the first k/2 walks (prefixes) with
the last k/2 walks (suffixes) *index-wise* -- prefix ``W_u^i`` ending at
``v`` merges with suffix ``W_v^{k-i+1}`` -- so that after log k iterations
every vertex holds one length-k walk.

The paper's contribution is the *load balancing*: instead of sending every
tuple to the machine named by its key (which on skewed graphs, e.g. a
star, concentrates Theta(n k) tuples on one machine), both sides of each
prospective merge are routed to ``h_s(key)`` for a shared ``8 c log
n``-wise independent hash ``h_s`` whose O(log^2 n)-bit seed machine 1
broadcasts each iteration. Lemma 10: every machine then receives at most
``16 c k log n`` tuples w.h.p., which Lenzen routing turns into the
Theorem 2 round bounds.

This module simulates the algorithm at message level: walk contents are
computed exactly, and *all* traffic (seed broadcast, tuple scatter, merged
walk return) is converted into rounds from true per-machine word loads.
Set ``load_balanced=False`` for the naive key-addressed variant -- the
ablation baseline of experiment E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.clique.hashing import KWiseHashFamily
from repro.clique.network import CongestedClique
from repro.clique.routing import broadcast_rounds, lenzen_rounds
from repro.errors import GraphError, WalkError
from repro.graphs.core import WeightedGraph
from repro.graphs.covertime import cover_time_bound
from repro.graphs.spanning import TreeKey, tree_key
from repro.linalg.backend import matrix_row
from repro.walks.sequential import first_visit_edges

__all__ = ["IterationStats", "DoublingResult", "doubling_random_walk",
           "spanning_tree_via_doubling"]


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration accounting for Theorem 2 / Lemma 10 validation."""

    k: int
    eta: int
    max_tuples_received: int
    max_words_received: int
    rounds: int


@dataclass
class DoublingResult:
    """Output of the doubling algorithm.

    ``walks[v]`` is the final length-``k_initial`` random walk starting at
    vertex ``v`` (vertex sequence, length ``k_initial + 1``). Walks from
    different vertices are mutually dependent (shared suffixes) but each
    is individually a faithful random walk -- exactly the guarantee of [7].
    """

    walks: np.ndarray
    rounds: int
    iterations: list[IterationStats] = field(default_factory=list)

    def walk(self, start: int) -> list[int]:
        """The constructed walk originating at ``start``."""
        return [int(v) for v in self.walks[start]]

    @property
    def length(self) -> int:
        """Number of steps in each constructed walk."""
        return self.walks.shape[1] - 1

    @property
    def max_tuples_received(self) -> int:
        """Worst per-machine tuple load over all iterations (Lemma 10)."""
        return max((it.max_tuples_received for it in self.iterations), default=0)


def _initial_walks(
    graph: WeightedGraph,
    k: int,
    rng: np.random.Generator,
    transition=None,
    *,
    rng_contract: str = "v1",
) -> np.ndarray:
    """Every vertex draws k independent length-1 walks (random edges).

    ``transition`` may be a pre-built walk matrix in any backend format
    (dense ndarray or scipy CSR); rows are extracted through the
    format-agnostic accessor so the draw sequence is identical either
    way. ``None`` builds the dense matrix from the graph.

    ``rng_contract="v2"`` draws one uniform block for the whole step
    (one generator invocation instead of one ``choice`` per vertex) and
    resolves each vertex's k edges by ``searchsorted`` against its row's
    cumulative law -- the same per-vertex distribution from different
    generator bits. ``"v1"`` keeps the per-vertex stream.
    """
    n = graph.n
    if transition is None:
        transition = graph.transition_matrix()
    walks = np.empty((n, k, 2), dtype=np.int64)
    walks[:, :, 0] = np.arange(n)[:, None]
    if rng_contract == "v2":
        block = rng.random((n, k))
        for v in range(n):
            cdf = np.cumsum(matrix_row(transition, v))
            draws = cdf.searchsorted(block[v] * cdf[-1], "right")
            walks[v, :, 1] = np.minimum(draws, n - 1)
        return walks
    for v in range(n):
        walks[v, :, 1] = rng.choice(n, size=k, p=matrix_row(transition, v))
    return walks


def doubling_random_walk(
    graph: WeightedGraph,
    tau: int,
    rng: np.random.Generator | None = None,
    *,
    load_balanced: bool = True,
    independence_c: int = 1,
    clique: CongestedClique | None = None,
    transition=None,
    rng_contract: str = "v2",
) -> DoublingResult:
    """Run (load-balanced) Doubling to build walks of length >= tau.

    Parameters
    ----------
    graph:
        Connected input graph; machine ``i`` hosts vertex ``i``.
    tau:
        Required walk length; rounded up to the next power of two ``k``.
    load_balanced:
        True (default) routes merge tuples through the k-wise hash
        (Section 3); False reproduces the naive key-addressed Doubling
        whose hot spots Lemma 11's analysis is contrasted against.
    independence_c:
        The ``c`` in the ``8 c log n``-wise independence of the hash
        family (Lemma 10 gives failure probability ``n^{-2c}``).
    clique:
        Optional simulator to charge; a fresh one is created otherwise.
    transition:
        Optional pre-built walk matrix in any linalg-backend format
        (dense or CSR); ``None`` builds the dense one from the graph.
    rng_contract:
        ``"v2"`` (default) draws the initial length-1 walks from one
        uniform block; ``"v1"`` keeps the per-vertex ``choice`` stream
        of earlier releases (needed to reproduce pre-v2 seeded runs).

    Returns
    -------
    DoublingResult
        Final walks, total rounds, and per-iteration load statistics.
    """
    graph.require_connected()
    if graph.n < 2:
        raise GraphError("doubling needs at least 2 vertices")
    if tau < 1:
        raise WalkError(f"walk length must be >= 1, got {tau}")
    rng = np.random.default_rng(rng)
    n = graph.n
    if clique is None:
        clique = CongestedClique(n)
    ledger = clique.ledger

    k = 1 << max(0, math.ceil(math.log2(tau)))
    eta = 1
    walks = _initial_walks(graph, k, rng, transition, rng_contract=rng_contract)
    iterations: list[IterationStats] = []
    rounds_before = ledger.total_rounds()

    while k > 1:
        k2 = k // 2
        iteration_rounds = 0

        # Step 1: machine 1 broadcasts the O(log^2 n)-bit hash seed.
        if load_balanced:
            independence = max(2, 8 * independence_c * math.ceil(math.log2(n)))
            family = KWiseHashFamily(
                independence, domain_size=n * (k + 1) + k + 1,
                codomain_size=n, rng=rng,
            )
            seed_words = max(1, math.ceil(len(family.seed_bits) / 8))
            seed_rounds = broadcast_rounds(seed_words, n)
            ledger.charge("doubling/seed-broadcast", seed_rounds)
            iteration_rounds += seed_rounds
        else:
            family = None

        js = np.arange(k2)
        prefix_ends = walks[:, :k2, -1]  # shape (n, k2)
        # 1-based partner index of prefix j (0-based) is k - j.
        if family is not None:
            prefix_keys = prefix_ends * (k + 1) + (k - js)[None, :]
            prefix_dest = family.many(prefix_keys.ravel()).reshape(n, k2)
            suffix_keys = (
                np.arange(n)[:, None] * (k + 1) + (js + k2 + 1)[None, :]
            )
            suffix_dest = family.many(suffix_keys.ravel()).reshape(n, k2)
        else:
            prefix_dest = prefix_ends.copy()
            suffix_dest = None  # suffixes stay with their owner

        # Steps 2-3 load accounting: each tuple costs (eta + 1) walk words
        # plus a 2-word (owner, index) header.
        tuple_words = (eta + 1) + 2
        recv_tuples = np.bincount(prefix_dest.ravel(), minlength=n)
        send_tuples = np.full(n, k2, dtype=np.int64)
        if suffix_dest is not None:
            recv_tuples += np.bincount(suffix_dest.ravel(), minlength=n)
            send_tuples += k2
        scatter_rounds = lenzen_rounds(
            int(send_tuples.max()) * tuple_words,
            int(recv_tuples.max()) * tuple_words,
            n,
        )
        ledger.charge("doubling/scatter", scatter_rounds)
        iteration_rounds += scatter_rounds

        # Step 4: the machine holding each merge key concatenates and
        # returns the merged walk to the prefix owner.
        merged_words = (2 * eta + 1) + 2
        merges_at = np.bincount(prefix_dest.ravel(), minlength=n)
        return_rounds = lenzen_rounds(
            int(merges_at.max()) * merged_words,
            k2 * merged_words,
            n,
        )
        ledger.charge("doubling/return", return_rounds)
        iteration_rounds += return_rounds

        # Perform the merges exactly: prefix (v, j) + suffix
        # (end, k - j - 1 zero-based) with the duplicated junction vertex
        # dropped.
        partner_index = k - 1 - js  # 0-based index of 1-based k - j
        suffix_rows = walks[prefix_ends, partner_index[None, :], :]
        merged = np.concatenate([walks[:, :k2, :], suffix_rows[:, :, 1:]], axis=2)

        iterations.append(
            IterationStats(
                k=k,
                eta=eta,
                max_tuples_received=int(recv_tuples.max()),
                max_words_received=int(recv_tuples.max()) * tuple_words,
                rounds=iteration_rounds,
            )
        )
        walks = merged
        k = k2
        eta *= 2

    total_rounds = ledger.total_rounds() - rounds_before
    return DoublingResult(
        walks=walks[:, 0, :], rounds=total_rounds, iterations=iterations
    )


def spanning_tree_via_doubling(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    walk_length: int | None = None,
    max_attempts: int = 8,
    clique: CongestedClique | None = None,
) -> tuple[TreeKey, DoublingResult]:
    """Corollary 1: spanning tree sampling in O~(tau / n) rounds.

    Builds a doubling walk of length ``walk_length`` (default: 4x the
    Matthews cover-time bound) from vertex 0 and extracts its first-visit
    edges. If the walk fails to cover the graph the length doubles and the
    algorithm retries (a Las-Vegas wrapper; each retry also charges its
    rounds). For graphs with cover time O(n log n) -- expanders, G(n, p),
    K_{n - sqrt(n), sqrt(n)} -- the default length keeps the total at
    O(polylog n) rounds.
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    if walk_length is None:
        walk_length = max(4 * int(math.ceil(cover_time_bound(graph))), graph.n)
    if clique is None:
        clique = CongestedClique(graph.n)
    combined_iterations: list[IterationStats] = []
    total_rounds = 0
    for _ in range(max_attempts):
        result = doubling_random_walk(graph, walk_length, rng, clique=clique)
        combined_iterations.extend(result.iterations)
        total_rounds += result.rounds
        walk = result.walk(0)
        edges = first_visit_edges(walk)
        if len(edges) == graph.n - 1:
            final = DoublingResult(
                walks=result.walks,
                rounds=total_rounds,
                iterations=combined_iterations,
            )
            return tree_key(edges), final
        walk_length *= 2
    raise WalkError(
        f"doubling walk failed to cover the graph after {max_attempts} "
        "doublings of the walk length"
    )
