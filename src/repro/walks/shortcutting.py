"""Sequential shortcutting sampler (the Kelner-Madry [52] lineage).

The paper's phase structure descends from the sequential shortcutting
idea: once a region of the graph is fully visited, an Aldous-Broder walk
wastes its remaining O(mn) budget re-crossing it, so *shortcut* over
visited vertices by walking the Schur complement of the unvisited region
instead (Sections 1, 1.3; Kelner-Madry [52], Madry-Straszak-Tarnawski
[64], Schild [69]).

:class:`ShortcuttingSampler` is the sequential (non-distributed) version
of that idea built on this library's substrates:

    repeat until every vertex is visited:
        S   := unvisited vertices + current endpoint
        walk Schur(G, S) step by step until rho_eff new vertices appear
        recover each first-visit edge in G through ShortCut(G, S)

It samples exactly the same distribution as Aldous-Broder (every phase
walk is the S-restriction of the underlying G walk), but its *step*
budget is the sum of Schur-walk lengths -- dramatically smaller than the
cover time on bottleneck graphs, which is precisely the effect the
paper's distributed algorithm exploits. Experiment E19 quantifies it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError, SamplingError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, is_spanning_tree, tree_key
from repro.linalg.backend import make_linalg_backend, matrix_row
from repro.linalg.shortcut import first_visit_edge_distribution

__all__ = ["ShortcuttingResult", "ShortcuttingSampler"]


@dataclass
class ShortcuttingResult:
    """Tree plus the step-budget evidence for the shortcutting effect."""

    tree: TreeKey
    phases: int
    schur_steps: int
    steps_per_phase: list[int] = field(default_factory=list)
    distinct_per_phase: list[int] = field(default_factory=list)


class ShortcuttingSampler:
    """Exact uniform (or weight-proportional) trees via shortcut walks.

    Parameters
    ----------
    graph:
        Connected input graph.
    rho:
        Distinct vertices per phase; ``None`` uses ``floor(sqrt(n))``
        (the paper's quota). Each phase stops at ``min(rho, |S|)``
        distinct vertices of the phase graph.
    start_vertex:
        The Aldous-Broder root (contributes no first-visit edge).
    linalg_backend:
        Numerics realization for the per-phase derived graphs:
        ``"dense"`` (default, the numpy reference path) or ``"sparse"``
        (scipy CSR + the elimination-block kernels of
        :mod:`repro.linalg.sparse`). The walk itself only reads rows
        through the format-agnostic accessors, so both backends draw
        identical trees for the same seed.
    rng_contract:
        ``"v2"`` (default) draws each phase's first-visit edges from one
        uniform block resolved against per-edge CDFs; ``"v1"`` keeps the
        per-edge ``choice`` stream of earlier releases. The step loop is
        inverse-CDF under both contracts (it always was).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        *,
        rho: int | None = None,
        start_vertex: int = 0,
        linalg_backend: str = "dense",
        rng_contract: str = "v2",
    ) -> None:
        graph.require_connected()
        if graph.n < 2:
            raise GraphError("sampling needs at least 2 vertices")
        if rho is not None and rho < 2:
            raise GraphError(f"rho must be >= 2, got {rho}")
        if not (0 <= start_vertex < graph.n):
            raise GraphError(f"start vertex {start_vertex} out of range")
        if rng_contract not in ("v2", "v1"):
            raise GraphError(f"unknown rng contract {rng_contract!r}")
        self.linalg = make_linalg_backend(linalg_backend)
        self.graph = graph
        self.rho = rho if rho is not None else max(2, math.isqrt(graph.n))
        self.start_vertex = start_vertex
        self.rng_contract = rng_contract

    def sample(self, rng: np.random.Generator | None = None) -> ShortcuttingResult:
        """Sample one tree; returns step-budget diagnostics as well."""
        rng = np.random.default_rng(rng)
        graph = self.graph
        n = graph.n
        visited = {self.start_vertex}
        current = self.start_vertex
        edges: list[tuple[int, int]] = []
        steps_per_phase: list[int] = []
        distinct_per_phase: list[int] = []
        phases = 0
        while len(visited) < n:
            phases += 1
            if phases > 2 * n:
                raise SamplingError(
                    "shortcutting sampler exceeded 2n phases"
                )  # pragma: no cover
            subset = sorted((set(range(n)) - visited) | {current})
            shortcut = self.linalg.shortcut_matrix(graph, subset)
            if len(subset) == n:
                transition = self.linalg.transition_matrix(graph)
                order = list(range(n))
            else:
                transition, order = self.linalg.schur_transition(
                    graph, subset, shortcut
                )
            index_of = {v: i for i, v in enumerate(order)}
            rho_eff = min(self.rho, len(subset))
            phase_n = transition.shape[0]

            # Row CDFs are materialized lazily per visited row (and
            # memoized), so the step loop reads whichever matrix type the
            # backend produced without ever densifying the whole thing.
            row_cdfs: dict[int, np.ndarray] = {}

            def cdf(row: int) -> np.ndarray:
                cached = row_cdfs.get(row)
                if cached is None:
                    cached = np.cumsum(matrix_row(transition, row))
                    row_cdfs[row] = cached
                return cached

            walk = [index_of[current]]
            seen = {walk[0]}
            while len(seen) < rho_eff:
                u = rng.random()
                nxt = int(np.searchsorted(cdf(walk[-1]), u, "right"))
                nxt = min(nxt, phase_n - 1)
                walk.append(nxt)
                seen.add(nxt)
            steps_per_phase.append(len(walk) - 1)
            distinct_per_phase.append(len(seen))

            walk_orig = [order[i] for i in walk]
            harvested = {walk_orig[0]}
            steps: list[tuple[int, int]] = []
            for position in range(1, len(walk_orig)):
                v = walk_orig[position]
                if v in harvested:
                    continue
                harvested.add(v)
                steps.append((walk_orig[position - 1], v))
            if self.rng_contract == "v2" and steps:
                # Block contract: one uniform vector covers every
                # first-visit edge the phase harvests.
                uniforms = rng.random(len(steps))
                for (prev, v), uniform in zip(steps, uniforms):
                    neighbors, law = first_visit_edge_distribution(
                        graph, subset, shortcut, prev, v
                    )
                    fv_cdf = np.cumsum(law)
                    index = int(
                        fv_cdf.searchsorted(uniform * fv_cdf[-1], "right")
                    )
                    u = int(neighbors[min(index, len(fv_cdf) - 1)])
                    edges.append((u, v))
            else:
                for prev, v in steps:
                    neighbors, law = first_visit_edge_distribution(
                        graph, subset, shortcut, prev, v
                    )
                    u = int(
                        neighbors[int(rng.choice(len(neighbors), p=law))]
                    )
                    edges.append((u, v))
            visited.update(walk_orig)
            current = walk_orig[-1]

        if len(edges) != n - 1 or not is_spanning_tree(graph, edges):
            raise SamplingError(
                "shortcutting sampler produced an invalid tree; this is a bug"
            )  # pragma: no cover
        return ShortcuttingResult(
            tree=tree_key(edges),
            phases=phases,
            schur_steps=sum(steps_per_phase),
            steps_per_phase=steps_per_phase,
            distinct_per_phase=distinct_per_phase,
        )
