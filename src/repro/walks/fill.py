"""Sequential top-down walk filling (Outline 1 and Section 2.1.2).

These are the paper's *reference* algorithms: the distributed sampler is
proven correct by showing it simulates them exactly (Lemmas 1-4). We keep
them as first-class library members because

1. they serve as the statistical ground truth the distributed
   implementation is validated against, and
2. the :class:`PartialWalk` invariants (uniform spacing, prefix
   truncation) they establish are reused verbatim by the distributed
   phase machinery in :mod:`repro.core`.

The filling process builds a walk of target length ``ell`` (a power of
two) level by level: level i starts from a partial walk whose filled
positions are exactly ``0, delta, 2 delta, ..., ell_i`` for
``delta = ell / 2^(i-1)``, and inserts a midpoint into every gap using the
Bayes/Markov two-sided law of Formula (1):

    Pr[midpoint = v] prop to P^{delta/2}[p, v] * P^{delta/2}[v, q].

The truncated variant re-truncates after every level so the walk always
ends at the first occurrence of its rho-th distinct vertex (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WalkError
from repro.linalg.backend import matrix_col, matrix_row
from repro.linalg.matpow import PowerLadder

__all__ = [
    "PartialWalk",
    "sample_midpoint",
    "fill_walk",
    "truncated_fill_walk",
    "sample_bridge",
]


@dataclass
class PartialWalk:
    """A uniformly spaced partial walk (the W_i of Section 2.1).

    Attributes
    ----------
    spacing:
        Index gap ``delta`` between consecutive filled positions.
    vertices:
        Filled vertices in chronological order; ``vertices[j]`` sits at
        walk index ``j * spacing``.

    The *target length* ``ell_i`` (the index of the final element) is
    derived: ``(len(vertices) - 1) * spacing``.
    """

    spacing: int
    vertices: list[int]

    def __post_init__(self) -> None:
        if self.spacing < 1:
            raise WalkError(f"spacing must be >= 1, got {self.spacing}")
        if not self.vertices:
            raise WalkError("partial walk must contain at least one vertex")

    @property
    def target_length(self) -> int:
        """Index of the final filled position (ell_i)."""
        return (len(self.vertices) - 1) * self.spacing

    @property
    def is_complete(self) -> bool:
        """True once every index is filled (spacing 1)."""
        return self.spacing == 1

    def pairs(self) -> list[tuple[int, int]]:
        """Consecutive (start, end) vertex pairs, i.e. the gaps to fill."""
        return list(zip(self.vertices, self.vertices[1:]))

    def distinct_count(self) -> int:
        """Number of distinct vertices currently in the walk."""
        return len(set(self.vertices))


def sample_midpoint(
    half_power,
    p: int,
    q: int,
    rng: np.random.Generator,
    *,
    count: int = 1,
    plan=None,
    level: int | None = None,
) -> list[int]:
    """Sample ``count`` i.i.d. midpoints between (p, q) (Formula 1).

    ``half_power`` is ``P^{delta/2}`` in whichever storage format the
    linalg backend produced (dense ndarray or scipy CSR); the
    unnormalized law over v is ``half_power[p, v] * half_power[v, q]``.
    Raises :class:`WalkError` when the two-step return probability
    ``P^{delta}[p, q]`` is zero (such a gap cannot exist in a genuine
    walk). ``plan``/``level`` optionally serve the law from a
    :class:`~repro.core.placement_plan.PlacementPlan` memo -- the cached
    vector is bit-equal to recomputation, so draws match either way.
    """
    if plan is not None and level is not None:
        # The plan memoizes the normalized law alongside the raw one, so
        # repeat visitors skip the O(n) divide (bit-equal either way).
        probabilities, total = plan.probabilities(level, p, q, half_power)
        if total <= 0:
            raise WalkError(
                f"no vertex can be the midpoint between {p} and {q}: "
                "inconsistent partial walk"
            )
    else:
        distribution = matrix_row(half_power, p) * matrix_col(half_power, q)
        total = distribution.sum()
        if total <= 0:
            raise WalkError(
                f"no vertex can be the midpoint between {p} and {q}: "
                "inconsistent partial walk"
            )
        probabilities = distribution / total
    draws = rng.choice(len(probabilities), size=count, p=probabilities)
    return [int(v) for v in draws]


def _fill_level(
    walk: PartialWalk,
    half_power,
    rng: np.random.Generator,
    *,
    plan=None,
    level: int | None = None,
    contract: str = "v1",
) -> PartialWalk:
    """Insert one midpoint into every gap, halving the spacing.

    Under ``contract="v2"`` the level consumes one uniform block (one
    generator invocation for all gaps) and resolves each gap by
    ``searchsorted`` against its cumulative law; ``"v1"`` keeps the
    per-gap ``rng.choice`` bit-stream of the sequential reference.
    """
    if walk.spacing % 2 != 0:
        raise WalkError(f"cannot halve odd spacing {walk.spacing}")
    pairs = walk.pairs()
    if contract == "v2":
        cdfs: list[np.ndarray] = []
        for p, q in pairs:
            if plan is not None and level is not None:
                cdf, total = plan.cdf(level, p, q, half_power)
            else:
                law = matrix_row(half_power, p) * matrix_col(half_power, q)
                total = law.sum()
                cdf = np.cumsum(law)
            if total <= 0:
                raise WalkError(
                    f"no vertex can be the midpoint between {p} and {q}: "
                    "inconsistent partial walk"
                )
            cdfs.append(cdf)
        block = rng.random(len(pairs)) if pairs else ()
        new_vertices = [walk.vertices[0]]
        for (__, q), cdf, u in zip(pairs, cdfs, block):
            midpoint = int(cdf.searchsorted(u * cdf[-1], "right"))
            new_vertices.append(min(midpoint, len(cdf) - 1))
            new_vertices.append(q)
        return PartialWalk(walk.spacing // 2, new_vertices)
    new_vertices = [walk.vertices[0]]
    for p, q in pairs:
        midpoint = sample_midpoint(
            half_power, p, q, rng, plan=plan, level=level
        )[0]
        new_vertices.append(midpoint)
        new_vertices.append(q)
    return PartialWalk(walk.spacing // 2, new_vertices)


def _truncate_at_distinct(walk: PartialWalk, rho: int) -> PartialWalk:
    """Truncate at the first occurrence of the rho-th distinct vertex.

    Scanning chronologically, the walk is cut (inclusively) at the first
    position where the distinct-vertex count reaches ``rho``; untouched if
    the walk never reaches ``rho`` distinct vertices. This realizes the
    deferred-truncation equivalence of Lemma 2.
    """
    seen: set[int] = set()
    for index, vertex in enumerate(walk.vertices):
        if vertex not in seen:
            seen.add(vertex)
            if len(seen) >= rho:
                return PartialWalk(walk.spacing, walk.vertices[: index + 1])
    return walk


def fill_walk(
    ladder: PowerLadder,
    start: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Outline 1: sample a complete random walk of length ``ladder.ell``.

    Samples the end vertex from ``P^ell[start, *]`` and fills midpoints
    level by level. Lemma 1: the result is distributed exactly as a
    step-by-step random walk of the same length.
    """
    rng = np.random.default_rng(rng)
    ell = ladder.ell
    end_distribution = matrix_row(ladder.power(ell), start)
    end = int(rng.choice(len(end_distribution), p=end_distribution))
    walk = PartialWalk(ell, [start, end])
    while not walk.is_complete:
        half = walk.spacing // 2
        walk = _fill_level(walk, ladder.power(half), rng)
    return list(walk.vertices)


def sample_bridge(
    ladder: PowerLadder,
    start: int,
    end: int,
    rng: np.random.Generator | None = None,
    *,
    length: int | None = None,
) -> list[int]:
    """Sample a random-walk *bridge*: a walk conditioned on its endpoints.

    This is the Fill subroutine of Outline 1 exposed as a public API: a
    length-``length`` walk from ``start`` distributed exactly as a plain
    walk conditioned on ending at ``end``. ``length`` defaults to
    ``ladder.ell`` and must be a power of two available in the ladder.
    Raises :class:`~repro.errors.WalkError` when no such bridge exists
    (``P^length[start, end] = 0``, e.g. parity-impossible endpoints on a
    bipartite graph).
    """
    rng = np.random.default_rng(rng)
    if length is None:
        length = ladder.ell
    top = ladder.power(length)  # validates that length is in the ladder
    if float(top[start, end]) <= 0.0:
        raise WalkError(
            f"no length-{length} bridge exists from {start} to {end}"
        )
    walk = PartialWalk(length, [start, end])
    while not walk.is_complete:
        walk = _fill_level(walk, ladder.power(walk.spacing // 2), rng)
    return list(walk.vertices)


def truncated_fill_walk(
    ladder: PowerLadder,
    start: int,
    rho: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Section 2.1.2: the sequential *truncated* fill algorithm.

    Identical to :func:`fill_walk` except that after every level the walk
    is truncated to end at the first occurrence of its rho-th distinct
    vertex. Lemma 2: the output is a random walk stopped at
    ``tau = min(ell, first time the rho-th distinct vertex appears)``.
    """
    if rho < 1:
        raise WalkError(f"rho must be >= 1, got {rho}")
    rng = np.random.default_rng(rng)
    ell = ladder.ell
    end_distribution = matrix_row(ladder.power(ell), start)
    end = int(rng.choice(len(end_distribution), p=end_distribution))
    walk = _truncate_at_distinct(PartialWalk(ell, [start, end]), rho)
    while not walk.is_complete:
        half = walk.spacing // 2
        walk = _fill_level(walk, ladder.power(half), rng)
        walk = _truncate_at_distinct(walk, rho)
    return list(walk.vertices)
