"""Random-walk machinery: sequential baselines, top-down fill, doubling.

- :mod:`repro.walks.sequential` -- plain (weighted) random walks, the
  Aldous-Broder and Wilson spanning-tree samplers, first-visit-edge
  extraction, and the random-weight-MST strawman of Section 1.4;
- :mod:`repro.walks.fill` -- the sequential top-down walk-filling
  algorithm (Outline 1 / Lemma 1) and its truncated variant (Section
  2.1.2 / Lemma 2), the reference implementations the distributed sampler
  is validated against;
- :mod:`repro.walks.doubling` -- the load-balanced doubling algorithm of
  Section 3 (Theorem 2) simulated at message level, plus the naive
  non-load-balanced variant used as the ablation baseline.
"""

from repro.walks.sequential import (
    aldous_broder_tree,
    aldous_broder_with_stats,
    boruvka_forest,
    distinct_vertex_count,
    first_visit_edges,
    forest_weight,
    kruskal_forest,
    random_walk,
    random_weight_mst_tree,
    walk_until_distinct,
    wilson_tree,
    wilson_tree_with_stats,
)
from repro.walks.fill import (
    PartialWalk,
    fill_walk,
    sample_bridge,
    sample_midpoint,
    truncated_fill_walk,
)
from repro.walks.doubling import (
    DoublingResult,
    doubling_random_walk,
    spanning_tree_via_doubling,
)
from repro.walks.pagerank import (
    PageRankEstimate,
    pagerank_exact,
    pagerank_via_walks,
)
from repro.walks.shortcutting import ShortcuttingResult, ShortcuttingSampler

__all__ = [
    "aldous_broder_tree",
    "aldous_broder_with_stats",
    "wilson_tree_with_stats",
    "distinct_vertex_count",
    "first_visit_edges",
    "boruvka_forest",
    "forest_weight",
    "kruskal_forest",
    "random_walk",
    "random_weight_mst_tree",
    "walk_until_distinct",
    "wilson_tree",
    "PartialWalk",
    "fill_walk",
    "sample_bridge",
    "sample_midpoint",
    "truncated_fill_walk",
    "DoublingResult",
    "doubling_random_walk",
    "spanning_tree_via_doubling",
    "PageRankEstimate",
    "pagerank_exact",
    "pagerank_via_walks",
    "ShortcuttingResult",
    "ShortcuttingSampler",
]
