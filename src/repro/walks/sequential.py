"""Sequential random-walk algorithms and spanning-tree baselines.

These are the classical algorithms the paper builds on or argues against:

- :func:`aldous_broder_tree` -- the Aldous [1] / Broder [12] sampler: run
  a walk until it covers the graph; the first-visit edges form a uniform
  spanning tree. Exact, expected time O(cover time) = O(mn).
- :func:`wilson_tree` -- Wilson's loop-erased-walk sampler [73], exact,
  expected time = mean hitting time. Our gold-standard fast exact baseline.
- :func:`random_weight_mst_tree` -- the Section 1.4 strawman: put i.i.d.
  uniform weights on edges and take the MST. *Not* uniform over spanning
  trees [39]; experiment E9 measures the bias.
- :func:`kruskal_forest` / :func:`boruvka_forest` -- the sequential MST
  oracles of the first-class MST workload: given explicit edge weights
  they return the minimum spanning forest and its canonical total
  weight. Every distributed MST result is cross-validated against
  Kruskal the same way sampled trees are gated against the Kirchhoff
  law (see ``repro.core.mst``).
- :func:`first_visit_edges` -- the Aldous-Broder extraction used by both
  the doubling-based sampler (Corollary 1) and validation tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import GraphError, WalkError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, tree_key

__all__ = [
    "random_walk",
    "walk_until_distinct",
    "first_visit_edges",
    "distinct_vertex_count",
    "aldous_broder_tree",
    "aldous_broder_with_stats",
    "wilson_tree",
    "wilson_tree_with_stats",
    "random_weight_mst_tree",
    "kruskal_forest",
    "boruvka_forest",
    "forest_weight",
]


def _cumulative_transitions(graph: WeightedGraph) -> np.ndarray:
    return np.cumsum(graph.transition_matrix(), axis=1)


def _step(cumulative: np.ndarray, current: int, rng: np.random.Generator) -> int:
    u = rng.random()
    nxt = int(np.searchsorted(cumulative[current], u, side="right"))
    return min(nxt, cumulative.shape[1] - 1)


def random_walk(
    graph: WeightedGraph,
    start: int,
    length: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """A weighted random walk of ``length`` steps (``length + 1`` vertices).

    Each step moves to a neighbor with probability proportional to the
    edge weight (Section 1.1 / footnote 1).
    """
    if not (0 <= start < graph.n):
        raise GraphError(f"start vertex {start} out of range")
    if length < 0:
        raise WalkError(f"walk length must be non-negative, got {length}")
    rng = np.random.default_rng(rng)
    cumulative = _cumulative_transitions(graph)
    walk = [start]
    current = start
    for _ in range(length):
        current = _step(cumulative, current, rng)
        walk.append(current)
    return walk


def walk_until_distinct(
    graph: WeightedGraph,
    start: int,
    target_distinct: int,
    rng: np.random.Generator | None = None,
    *,
    max_steps: int | None = None,
) -> list[int]:
    """Walk until the ``target_distinct``-th distinct vertex first appears.

    This is the stopping time ``T`` of Section 2.1 (with rho =
    ``target_distinct``): the returned walk ends exactly at the first
    occurrence of the rho-th distinct vertex. ``max_steps`` guards against
    unreachable targets (default ``100 * n^3`` steps).
    """
    if not (1 <= target_distinct <= graph.n):
        raise WalkError(
            f"target_distinct must be in [1, {graph.n}], got {target_distinct}"
        )
    rng = np.random.default_rng(rng)
    cumulative = _cumulative_transitions(graph)
    if max_steps is None:
        max_steps = 100 * graph.n**3 + 1000
    walk = [start]
    seen = {start}
    current = start
    while len(seen) < target_distinct:
        if len(walk) > max_steps:
            raise WalkError(
                f"walk failed to reach {target_distinct} distinct vertices "
                f"within {max_steps} steps"
            )
        current = _step(cumulative, current, rng)
        walk.append(current)
        seen.add(current)
    return walk


def first_visit_edges(walk: Sequence[int]) -> list[tuple[int, int]]:
    """Aldous-Broder extraction: the edge used to first visit each vertex.

    The start vertex contributes no edge. When the walk covers an n-vertex
    graph the result has n - 1 edges and is a spanning tree distributed
    uniformly (for walks on unweighted graphs) or proportionally to the
    tree weight (weighted).
    """
    if not walk:
        return []
    seen = {walk[0]}
    edges: list[tuple[int, int]] = []
    for prev, here in zip(walk, walk[1:]):
        if here not in seen:
            seen.add(here)
            edges.append((prev, here))
    return edges


def distinct_vertex_count(walk: Sequence[int]) -> int:
    """Number of distinct vertices in a walk (Barnes-Feige experiments)."""
    return len(set(walk))


def aldous_broder_tree(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    start: int | None = None,
    max_steps: int | None = None,
) -> TreeKey:
    """Exact uniform spanning tree via Aldous-Broder.

    Runs a walk from ``start`` (default 0) until it covers the graph and
    returns the canonical key of the first-visit-edge tree.
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    if start is None:
        start = 0
    walk = walk_until_distinct(graph, start, graph.n, rng, max_steps=max_steps)
    return tree_key(first_visit_edges(walk))


def aldous_broder_with_stats(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    start: int | None = None,
    max_steps: int | None = None,
) -> tuple[TreeKey, int]:
    """Aldous-Broder returning ``(tree, walk steps used)``.

    The step count is the cover time realization -- the quantity whose
    Theta(mn) worst case motivates the whole paper (Section 1).
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    if start is None:
        start = 0
    walk = walk_until_distinct(graph, start, graph.n, rng, max_steps=max_steps)
    return tree_key(first_visit_edges(walk)), len(walk) - 1


def wilson_tree(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    root: int | None = None,
) -> TreeKey:
    """Exact uniform spanning tree via Wilson's loop-erased walks [73].

    Starting from a root, repeatedly take a loop-erased random walk from
    an unvisited vertex to the current tree and graft it. Exact for both
    unweighted (uniform) and weighted (weight-proportional) graphs.
    """
    tree, _ = wilson_tree_with_stats(graph, rng, root=root)
    return tree


def wilson_tree_with_stats(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    root: int | None = None,
) -> tuple[TreeKey, int]:
    """Wilson's algorithm returning ``(tree, total walk steps)``.

    Steps include erased loops; the expectation is the mean hitting time
    of the graph [73], which the paper contrasts with Aldous-Broder's
    cover time (both Theta(mn) in the worst case, but Wilson wins on
    average).
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    n = graph.n
    if root is None:
        root = 0
    if not (0 <= root < n):
        raise GraphError(f"root {root} out of range")
    cumulative = _cumulative_transitions(graph)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    next_vertex = np.full(n, -1, dtype=np.int64)
    steps = 0
    for source in range(n):
        if in_tree[source]:
            continue
        # Random walk from source recording successors (cycle popping).
        current = source
        while not in_tree[current]:
            nxt = _step(cumulative, current, rng)
            next_vertex[current] = nxt
            current = nxt
            steps += 1
        # Retrace the loop-erased path and add it to the tree.
        current = source
        while not in_tree[current]:
            in_tree[current] = True
            current = int(next_vertex[current])
    # After cycle popping every non-root vertex's recorded successor is its
    # tree parent (stale successors only exist on popped-cycle vertices,
    # which were re-walked and overwritten before joining the tree).
    tree_edges = [(v, int(next_vertex[v])) for v in range(n) if v != root]
    if len(tree_edges) != n - 1:
        raise WalkError("Wilson's algorithm produced a non-tree")  # pragma: no cover
    return tree_key(tree_edges), steps


class _UnionFind:
    """Union-find with path compression for Kruskal's MST."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        return True


def random_weight_mst_tree(
    graph: WeightedGraph,
    rng: np.random.Generator | None = None,
    *,
    weight_sampler: Callable[[np.random.Generator, int], np.ndarray] | None = None,
) -> TreeKey:
    """The Section 1.4 strawman: MST under i.i.d. random edge weights.

    Assigns each edge an independent Uniform[0, 1] weight (or a custom
    sampler's output) and returns the minimum spanning tree via Kruskal.
    The resulting distribution over spanning trees is well known *not* to
    be uniform [39] -- experiment E9 quantifies the gap against our
    samplers.
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    edges = graph.edges()
    if weight_sampler is None:
        draws = rng.random(len(edges))
    else:
        draws = np.asarray(weight_sampler(rng, len(edges)), dtype=np.float64)
        if draws.shape != (len(edges),):
            raise WalkError("weight_sampler returned wrong shape")
    order = np.argsort(draws)
    uf = _UnionFind(graph.n)
    tree: list[tuple[int, int]] = []
    for index in order:
        u, v = edges[int(index)]
        if uf.union(u, v):
            tree.append((u, v))
            if len(tree) == graph.n - 1:
                break
    if len(tree) != graph.n - 1:
        raise WalkError("Kruskal failed to span the graph")  # pragma: no cover
    return tree_key(tree)


def _check_weights(graph: WeightedGraph, weights) -> np.ndarray:
    """Validate an explicit per-edge weight vector over ``graph.edges()``."""
    array = np.asarray(weights, dtype=np.float64)
    m = len(graph.edges())
    if array.shape != (m,):
        raise WalkError(
            f"need one weight per edge: expected shape ({m},), "
            f"got {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise WalkError("edge weights must be finite")
    return array


def forest_weight(weights: np.ndarray, indices) -> float:
    """Canonical total weight of a forest given by edge *indices*.

    Summed in ascending edge-index order so two algorithms choosing the
    same edge set report the byte-identical float total regardless of
    the order they discovered the edges in -- the equality the oracle
    gate and the service invariance tests rely on.
    """
    order = np.sort(np.asarray(list(indices), dtype=np.int64))
    return float(np.sum(np.asarray(weights, dtype=np.float64)[order]))


def kruskal_forest(
    graph: WeightedGraph,
    weights,
    *,
    tie_break: str = "index",
) -> tuple[TreeKey, float]:
    """Sequential Kruskal oracle: ``(forest key, canonical total weight)``.

    Edges are scanned in ascending ``(weight, tie order)``. With
    ``tie_break="index"`` ties break by ascending edge index -- the same
    total order the distributed runner uses, under which the MSF is
    unique and edge-set equality is the oracle gate. With
    ``tie_break="reverse"`` ties break by *descending* index: a
    deliberately different-but-valid MSF, so tests can pin the
    tie-robust invariant (equal total weight) without the tie-break
    coincidentally matching.
    """
    graph.require_connected()
    edges = graph.edges()
    array = _check_weights(graph, weights)
    index = np.arange(len(edges))
    if tie_break == "index":
        order = np.lexsort((index, array))
    elif tie_break == "reverse":
        order = np.lexsort((-index, array))
    else:
        raise WalkError(
            f"tie_break must be 'index' or 'reverse', got {tie_break!r}"
        )
    uf = _UnionFind(graph.n)
    chosen: list[int] = []
    for i in order:
        u, v = edges[int(i)]
        if uf.union(u, v):
            chosen.append(int(i))
            if len(chosen) == graph.n - 1:
                break
    if len(chosen) != graph.n - 1:
        raise WalkError("Kruskal failed to span the graph")  # pragma: no cover
    forest = tree_key(edges[i] for i in chosen)
    return forest, forest_weight(array, chosen)


def boruvka_forest(
    graph: WeightedGraph,
    weights,
) -> tuple[TreeKey, float, int]:
    """Sequential Boruvka oracle: ``(forest, total weight, phases)``.

    Each phase every component picks its minimum outgoing edge under the
    ``(weight, edge index)`` total order -- the order making the MSF
    unique, so the result is edge-for-edge the ``tie_break="index"``
    Kruskal forest. The phase count is what the node-CC recipe's
    per-phase aggregation charges scale with.
    """
    graph.require_connected()
    edges = graph.edges()
    array = _check_weights(graph, weights)
    uf = _UnionFind(graph.n)
    chosen: list[int] = []
    phases = 0
    while len(chosen) < graph.n - 1:
        phases += 1
        # component root -> best (weight, edge index) leaving it
        best: dict[int, tuple[float, int]] = {}
        for i, (u, v) in enumerate(edges):
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            candidate = (float(array[i]), i)
            for root in (ru, rv):
                if root not in best or candidate < best[root]:
                    best[root] = candidate
        if not best:  # pragma: no cover - connected graphs always merge
            raise WalkError("Boruvka stalled before spanning the graph")
        for _, i in sorted(set(best.values())):
            u, v = edges[i]
            if uf.union(u, v):
                chosen.append(i)
    forest = tree_key(edges[i] for i in chosen)
    return forest, forest_weight(array, chosen), phases
