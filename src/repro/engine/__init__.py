"""The batched sampling engine: backends, caching, and ensemble driving.

Three layers sit between the public sampler facade and the numerics:

1. :mod:`repro.engine.backends` -- the :class:`MatmulBackend` protocol
   unifying the analytic O~(n^alpha) charge model and the executable 3D
   protocol behind one interface;
2. :mod:`repro.engine.cache` / :mod:`repro.engine.store` -- the
   :class:`DerivedGraphCache` (byte-budgeted RAM LRU memoizing
   shortcut/Schur/power-ladder numerics by vertex subset while
   preserving per-run round charges exactly) and the
   :class:`TieredPhaseStore` layering it over a persistent,
   process-shared on-disk blob tier (:class:`DiskTier`);
3. :mod:`repro.engine.runner` / :mod:`repro.engine.ensemble` -- the
   single-draw :class:`SamplerEngine` and the :class:`EnsembleEngine`
   batch driver with multi-process fan-out.

``repro.core.sampler`` remains the stable public surface; this package is
for workloads that want direct control over caching and batching.
"""

# Import order matters: leaf modules (backends/cache/results) come before
# runner, which pulls in repro.core and may re-enter this package.
from repro.engine.backends import (
    AnalyticMatmul,
    MatmulBackend,
    make_matmul_backend,
)
from repro.engine.cache import DerivedGraphCache, PhaseNumerics
from repro.engine.store import (
    DiskTier,
    TieredPhaseStore,
    open_phase_store,
    resolve_cache_root,
)
from repro.engine.results import SampleResult
from repro.engine.runner import SamplerEngine
from repro.engine.ensemble import (
    EnsembleEngine,
    EnsembleResult,
    sample_tree_ensemble,
)

__all__ = [
    "AnalyticMatmul",
    "MatmulBackend",
    "make_matmul_backend",
    "DerivedGraphCache",
    "PhaseNumerics",
    "DiskTier",
    "TieredPhaseStore",
    "open_phase_store",
    "resolve_cache_root",
    "SampleResult",
    "SamplerEngine",
    "EnsembleEngine",
    "EnsembleResult",
    "sample_tree_ensemble",
]
