"""Pluggable matrix-multiplication backends (engine layer 1).

The sampler's numeric core performs one kind of heavy collective
operation: ``n x n`` matrix multiplication, which the paper charges either
analytically (the [17] fast-multiplication black box at O~(n^alpha)
rounds) or via the executable combinatorial 3D protocol at O(n^{1/3})
measured rounds. :class:`MatmulBackend` captures what the engine needs
from either realization:

- :meth:`~MatmulBackend.multiply` -- perform a product and charge its
  rounds to the run's ledger;
- :meth:`~MatmulBackend.charge_replay` -- charge the rounds of products
  whose *numerics* were replayed from a cache
  (:class:`~repro.engine.cache.DerivedGraphCache`) without redoing the
  floating-point work. Both backends can do this exactly because their
  per-product charge is a deterministic function of the matrix size
  (closed-form for the analytic backend; value-independent word loads for
  the simulated protocol).

:class:`AnalyticMatmul` is the black-box realization;
:class:`repro.clique.matmul3d.SimulatedMatmul` satisfies the same
protocol. :func:`make_matmul_backend` maps a
:class:`~repro.core.config.SamplerConfig.matmul_backend` name to an
instance, replacing the if/else dispatch that used to live inside the
sampler's phase loop.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.clique.cost import RoundLedger
from repro.clique.matmul3d import SimulatedMatmul
from repro.core.variants import BROADCAST_BANDWIDTH
from repro.errors import ConfigError

__all__ = [
    "MatmulBackend",
    "AnalyticMatmul",
    "BroadcastCollectiveMatmul",
    "make_matmul_backend",
]


@runtime_checkable
class MatmulBackend(Protocol):
    """Uniform interface over analytic and executable matmul realizations."""

    name: str

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        entry_words: int | None = None,
        note: str = "",
    ) -> np.ndarray:
        """Return ``a @ b`` and charge the product's rounds."""
        ...

    def charge_replay(
        self,
        size: int | None = None,
        *,
        count: int = 1,
        entry_words: int | None = None,
        note: str = "",
    ) -> None:
        """Charge ``count`` size-``size`` products without redoing numerics."""
        ...


class AnalyticMatmul:
    """The paper's accounting: numpy numerics + O~(n^alpha) analytic charges.

    Each :meth:`multiply` performs the product with numpy and charges
    ``CostModel.matmul_rounds(n, entry_words)`` to the ledger -- exactly
    the charge the sampler used to issue inline. With no ledger the
    backend is a pure-numerics multiplier.
    """

    name = "analytic"

    def __init__(self, ledger: RoundLedger | None = None) -> None:
        self.ledger = ledger
        self.calls = 0

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        entry_words: int | None = None,
        note: str = "",
    ) -> np.ndarray:
        """``a @ b`` plus one analytic matmul charge at size ``a.shape[0]``."""
        self.calls += 1
        if self.ledger is not None:
            self.ledger.charge_matmul(
                a.shape[0], entry_words=entry_words, note=note
            )
        return a @ b

    def charge_replay(
        self,
        size: int | None = None,
        *,
        count: int = 1,
        entry_words: int | None = None,
        note: str = "",
    ) -> None:
        """Charge ``count`` analytic products of dimension ``size``.

        The analytic formula never depended on the numerics, so replayed
        charges are identical to the charges of a cold run.
        """
        if size is None:
            raise ConfigError("analytic replay requires an explicit size")
        if self.ledger is not None and count >= 1:
            self.ledger.charge_matmul(
                size, count=count, entry_words=entry_words, note=note
            )


class BroadcastCollectiveMatmul:
    """Broadcast-CC accounting: numpy numerics + polylog sketch charges.

    The Broadcast Congested Clique variant runs the same floating-point
    products as :class:`AnalyticMatmul` but bills them in the broadcast
    model: each product charges
    :meth:`~repro.clique.cost.CostModel.broadcast_matmul_rounds` to the
    dedicated ``"broadcast-bandwidth"`` category instead of a unicast
    matmul charge. Satisfies the same :class:`MatmulBackend` protocol, so
    cache replay (:meth:`charge_replay`) works identically -- the charge
    is a closed form of the matrix size, never of the numerics.
    """

    name = "broadcast-collective"
    category = BROADCAST_BANDWIDTH

    def __init__(self, ledger: RoundLedger | None = None) -> None:
        self.ledger = ledger
        self.calls = 0

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        entry_words: int | None = None,
        note: str = "",
    ) -> np.ndarray:
        """``a @ b`` plus one broadcast sketch charge at size ``a.shape[0]``."""
        self.calls += 1
        if self.ledger is not None:
            rounds = self.ledger.model.broadcast_matmul_rounds(
                a.shape[0], entry_words=entry_words
            )
            self.ledger.charge(self.category, rounds, note)
        return a @ b

    def charge_replay(
        self,
        size: int | None = None,
        *,
        count: int = 1,
        entry_words: int | None = None,
        note: str = "",
    ) -> None:
        """Charge ``count`` broadcast products of dimension ``size``."""
        if size is None:
            raise ConfigError("broadcast replay requires an explicit size")
        if self.ledger is not None and count >= 1:
            rounds = (
                self.ledger.model.broadcast_matmul_rounds(
                    size, entry_words=entry_words
                )
                * count
            )
            self.ledger.charge(self.category, rounds, note)


def make_matmul_backend(
    name: str, size: int, ledger: RoundLedger | None = None
) -> MatmulBackend:
    """Instantiate the configured backend for one phase's matrix size."""
    if name == "analytic":
        return AnalyticMatmul(ledger)
    if name == "simulated-3d":
        return SimulatedMatmul(size, ledger=ledger)
    if name == "broadcast-collective":
        return BroadcastCollectiveMatmul(ledger)
    raise ConfigError(f"unknown matmul backend {name!r}")
