"""Cross-sample derived-graph cache (engine layer 2).

Each phase of the Theorem 1 sampler derives its chain from the frozen
vertex subset ``S``: the ShortCut(G, S) matrix, the Schur(G, S) transition
matrix, and the Lemma 7 power ladder. These numerics are deterministic
functions of ``(G, S, config)`` -- no randomness touches them -- so
ensemble workloads that revisit a subset (phase 1's ``S = V`` on *every*
draw; later subsets whenever walks coincide) can reuse them wholesale.

The round model is unaffected by reuse: rounds are charged *per run*, so
a cache hit replays the exact charges a cold computation would have
issued (see :meth:`~repro.engine.runner.SamplerEngine`). Both matmul
backends support this because their per-product charge is a deterministic
function of the matrix size. Consequently a run with the cache enabled
produces byte-identical trees and identical round bills to a run without
it -- property tests pin this.

This generalizes the seed's phase-1-only ladder cache to every phase and
every backend. The cache itself is a bounded LRU map over opaque
hashable keys; :class:`~repro.engine.runner.SamplerEngine` keys entries
by ``(graph/config fingerprint, sorted subset tuple)`` so a cache shared
between engines can never serve numerics computed for a different graph
or configuration. Entries hold O(|S|^2 log ell) floats, so capacity is
bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Hashable

from repro.errors import ConfigError
from repro.linalg.backend import matrix_nbytes
from repro.linalg.matpow import PowerLadder

__all__ = [
    "PhaseNumerics",
    "DerivedGraphCache",
    "config_fingerprint",
    "CACHE_BEHAVIOR_FIELDS",
    "NON_NUMERICS_FIELDS",
]

# Configuration fields that steer *where and how much* the cache stores,
# never *what numbers* the sampler computes. They are excluded from the
# fingerprint on purpose: two sessions pointed at the same persistent
# cache directory with different byte budgets (or one with the cache
# disabled entirely) compute identical PhaseNumerics, so keying on these
# fields would make them unable to share a single entry -- the exact
# sharing the disk tier exists for.
CACHE_BEHAVIOR_FIELDS = frozenset(
    {
        "derived_cache",
        "derived_cache_entries",
        "cache_dir",
        "cache_memory_bytes",
        "cache_disk_bytes",
    }
)

# The full exclusion set: cache sizing/location knobs plus execution-mode
# knobs that select *how* a result is computed, never its bytes.
# ``placement_mode`` qualifies because PhaseNumerics is pure subset
# linear algebra the placement layer only reads -- and because the two
# modes draw byte-identical trees (property-tested), a batched session
# may warm-start from a reference session's entries and vice versa.
# ``rng_contract`` qualifies for the same reason one step further out:
# it only changes *which generator bits* realize a decision at read
# time (per-decision choice vs block draws over plan CDFs), never the
# laws or matrices stored in an entry, so v1 and v2 sessions share
# numerics entries -- only golden seed fixtures fork across contracts.
NON_NUMERICS_FIELDS = CACHE_BEHAVIOR_FIELDS | {
    "placement_mode",
    "rng_contract",
}


def config_fingerprint(config, *, resolved_ell: int, linalg_backend: str) -> str:
    """Canonical string over every *numerics-affecting* field plus resolved state.

    Cache keys used to be derived from a hand-picked list of
    "numerics-relevant" fields, which silently went stale whenever a new
    numerics-affecting knob was added (two sessions sharing a cache with
    different truncation/precision settings could then exchange
    :class:`PhaseNumerics` entries). Fingerprinting the complete
    dataclass -- plus the resolved walk length and the resolved linalg
    backend, which are functions of config *and* graph -- over-partitions
    harmlessly (a non-numeric field change just forfeits sharing) but can
    never alias two configurations that compute different numbers.

    The one deliberate carve-out is :data:`NON_NUMERICS_FIELDS`:
    cache location/sizing knobs change which entries are *kept* and
    ``placement_mode`` changes which code path *reads* them -- never the
    bytes inside them -- and including them would partition a shared
    persistent directory into mutually invisible shards.
    """
    parts: list[tuple[str, str]] = []
    for field in fields(config):
        if field.name in NON_NUMERICS_FIELDS:
            continue
        value = getattr(config, field.name)
        if field.name == "extra":
            try:
                value = sorted((str(k), repr(v)) for k, v in value.items())
            except Exception:  # unsortable/exotic payloads still fingerprint
                value = repr(value)
        parts.append((field.name, repr(value)))
    parts.append(("resolved_ell", repr(int(resolved_ell))))
    parts.append(("resolved_linalg", repr(str(linalg_backend))))
    return repr(parts)


@dataclass
class PhaseNumerics:
    """One phase's subset-determined numerics plus its charge recipe.

    ``shortcut`` / ``transition`` / ``order`` / ``ladder`` are what phase
    execution consumes; the remaining fields record how a cold build
    charged the ledger so a cache hit can replay identical rounds.
    ``shortcut`` and ``transition`` are stored in whichever format the
    engine's linalg backend produced (dense ndarray or scipy CSR) --
    the backend name is part of the cache key, so formats never mix.
    """

    shortcut: object
    transition: object
    order: list[int]
    ladder: PowerLadder
    is_phase_one: bool
    ladder_size: int
    ladder_squarings: int
    ladder_entry_words: int | None
    shortcut_squarings: int  # 0 in phase 1 (no Corollary 2 charge)
    # The phase's batched-placement memo (laws, prepared DPs, first-visit
    # tables; see repro.core.placement_plan). Rides the cache entry so
    # every draw against this subset shares one classification; None
    # until a batched-mode engine touches the entry, always None in
    # reference mode.
    plan: object | None = None

    def nbytes(self) -> int:
        """Total bytes held by this entry (matrices + placement plan).

        Matrix bytes are deduplicated by object identity: with
        ``bits=None`` the ladder's base power *is* the transition matrix,
        and counting it twice would charge the byte budget for memory
        that isn't there.
        """
        total = 0
        seen: set[int] = set()
        matrices = [self.shortcut, self.transition]
        matrices.extend(self.ladder.power(k) for k in self.ladder.exponents)
        for matrix in matrices:
            if matrix is None or id(matrix) in seen:
                continue
            seen.add(id(matrix))
            total += matrix_nbytes(matrix)
        if self.plan is not None:
            total += self.plan.nbytes()
        return total


def _entry_nbytes(numerics) -> int:
    """Byte size of a cache entry; 0 for opaque test payloads."""
    sizer = getattr(numerics, "nbytes", None)
    if callable(sizer):
        return int(sizer())
    return 0


class DerivedGraphCache:
    """Bounded LRU map from phase keys to :class:`PhaseNumerics`.

    Eviction is byte-accounted: ``max_bytes`` caps the summed
    :meth:`PhaseNumerics.nbytes` of resident entries (an n=1024 dense
    ladder entry is ~60 MB, so an entry-count cap alone is meaningless at
    scale). ``max_entries`` remains as a secondary cap. An entry larger
    than the whole byte budget is refused residency outright -- it can
    neither blow past the budget nor flush the resident working set on
    its way through (it may still live on the disk tier; see
    :mod:`repro.engine.store`).
    """

    def __init__(
        self, max_entries: int = 64, *, max_bytes: int | None = None
    ) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError(
                f"cache needs max_bytes >= 1 (or None), got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[Hashable, PhaseNumerics] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> PhaseNumerics | None:
        """The cached numerics for a phase key, or None (counts a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: Hashable, numerics: PhaseNumerics) -> None:
        """Insert (or refresh) an entry, evicting LRU ones past either cap."""
        size = _entry_nbytes(numerics)
        if self.max_bytes is not None and size > self.max_bytes:
            # Refused residency: admitting an entry bigger than the
            # whole budget would evict every resident entry first (the
            # new entry is MRU) and still end over budget.
            if key in self._entries:
                del self._entries[key]
                self.bytes_used -= self._sizes.pop(key, 0)
            self.evictions += 1
            return
        if key in self._entries:
            self.bytes_used -= self._sizes.pop(key, 0)
            self._entries.move_to_end(key)
        self._entries[key] = numerics
        self._sizes[key] = size
        self.bytes_used += size
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        while self._entries and (
            len(self._entries) > self.max_entries
            or (self.max_bytes is not None and self.bytes_used > self.max_bytes)
        ):
            evicted_key, _ = self._entries.popitem(last=False)
            self.bytes_used -= self._sizes.pop(evicted_key, 0)
            self.evictions += 1

    def refresh(self, key: Hashable) -> None:
        """Re-measure a resident entry whose attached state grew.

        PhaseNumerics entries are append-only *except* for the placement
        plan hanging off them, which grows as draws touch new structure;
        the engine calls this at the end of each run so the byte ledger
        tracks real residency. An entry grown past the whole budget is
        evicted outright (mirroring store's refusal rule).
        """
        entry = self._entries.get(key)
        if entry is None:
            return
        size = _entry_nbytes(entry)
        if self.max_bytes is not None and size > self.max_bytes:
            del self._entries[key]
            self.bytes_used -= self._sizes.pop(key, 0)
            self.evictions += 1
            return
        self.bytes_used += size - self._sizes.get(key, 0)
        self._sizes[key] = size
        self._evict_over_budget()

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()
        self._sizes.clear()
        self.bytes_used = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size and bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": int(self.bytes_used),
        }
