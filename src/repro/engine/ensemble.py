"""Parallel ensemble driver (engine layer 3).

Ensemble workloads -- uniformity audits, TV-distance estimation, leverage
marginals, sparsifier construction -- need hundreds of independent draws
from the same sampler. :class:`EnsembleEngine` runs them two ways:

- :meth:`~EnsembleEngine.run_sequential` -- the facade's ``sample_many``
  backend: draws share one rng stream and one warm
  :class:`~repro.engine.cache.DerivedGraphCache`, exactly reproducing the
  semantics of a plain Python loop over ``sample()``.
- :meth:`~EnsembleEngine.sample_ensemble` -- the batch API: a master
  :class:`numpy.random.SeedSequence` spawns one child seed per draw, and
  draws fan out over ``jobs`` worker processes (contiguous chunks, each
  worker building its own engine and cache). Because every draw is keyed
  to its own spawned seed, single- and multi-process runs of the same
  master seed produce byte-identical tree sequences -- parallelism never
  changes outputs, only wall-clock.
- :meth:`~EnsembleEngine.iter_ensemble` -- the streaming API behind
  :meth:`repro.api.session.Session.stream`: identical seed spawning, but
  draws are yielded incrementally (in draw order) as their worker chunks
  complete instead of after the whole batch.

Workers receive ``(weights, config, variant, seeds)`` payloads; results
(:class:`~repro.engine.results.SampleResult`) are plain dataclasses and
pickle cleanly. If process spawning is unavailable (restricted sandboxes,
daemonic parents), the driver degrades to the sequential path with the
same seeds -- identical results, no failure.

The batched placement engine rides the same payload: ``config`` carries
``placement_mode``, so every worker builds per-phase
:class:`~repro.core.placement_plan.PlacementPlan`s of its own -- and
when the config names a ``cache_dir``, workers both load plans earlier
processes spilled and spill the plans they grow (atomic per-entry
``plan.npz`` blobs), so a fleet warm-starts classification exactly like
it warm-starts numerics. jobs=1 and jobs=N remain byte-identical.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SamplerConfig
from repro.engine.results import SampleResult
from repro.engine.runner import SamplerEngine
from repro.errors import GraphError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey

__all__ = [
    "EnsembleResult",
    "EnsembleEngine",
    "sample_tree_ensemble",
    "aggregate_cache_stats",
]

_LOG = logging.getLogger(__name__)

# Cache-stat keys that are point-in-time gauges rather than monotonic
# counters: summing them across workers would overstate a fleet (every
# worker over one shared cache_dir reports the same disk footprint), so
# aggregation takes their max instead.
_GAUGE_KEYS = frozenset({"entries", "bytes", "disk_entries", "disk_bytes"})


def aggregate_cache_stats(per_worker: list[dict]) -> dict:
    """Combine per-worker cache counters into one fleet-level dict.

    Counter keys (hits/misses/spills/...) sum across workers -- the
    fleet's total lookups equal a single process's for the same draws,
    which is what the ``jobs``-invariance regression pins. Gauge keys
    (current entries/bytes per tier) take the max: RAM tiers are
    per-process and the disk tier is shared, so a sum would double
    count.
    """
    aggregate: dict[str, int] = {}
    for stats in per_worker:
        for key, value in stats.items():
            if key in _GAUGE_KEYS:
                aggregate[key] = max(aggregate.get(key, 0), int(value))
            else:
                aggregate[key] = aggregate.get(key, 0) + int(value)
    return aggregate


@dataclass
class EnsembleResult:
    """A batch of independent draws plus throughput diagnostics."""

    results: list[SampleResult]
    seconds: float
    jobs: int
    entropy: int | None = None
    cache_stats: dict = field(default_factory=dict)
    # True when the process pool broke and the batch fell back to the
    # sequential path (identical outputs, degraded delivery).
    degraded: bool = False

    @property
    def count(self) -> int:
        """Number of draws in the batch."""
        return len(self.results)

    @property
    def trees(self) -> list[TreeKey]:
        """The sampled trees, in draw order."""
        return [result.tree for result in self.results]

    def trees_per_second(self) -> float:
        """Throughput of the batch (wall-clock)."""
        return self.count / max(self.seconds, 1e-12)

    def total_rounds(self) -> int:
        """Summed round bill across all draws."""
        return sum(result.rounds for result in self.results)

    def mean_rounds(self) -> float:
        """Average per-draw round bill."""
        return self.total_rounds() / max(1, self.count)

    def to_dict(self) -> dict:
        """JSON-serializable wire form (per-draw results included)."""
        return {
            "results": [result.to_dict() for result in self.results],
            "seconds": float(self.seconds),
            "jobs": int(self.jobs),
            "entropy": None if self.entropy is None else int(self.entropy),
            "cache_stats": {
                key: int(value) for key, value in self.cache_stats.items()
            },
            "degraded": bool(self.degraded),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EnsembleResult":
        """Rebuild a batch result from :meth:`to_dict` output."""
        return cls(
            results=[
                SampleResult.from_dict(result)
                for result in payload.get("results", [])
            ],
            seconds=float(payload["seconds"]),
            jobs=int(payload["jobs"]),
            entropy=(
                None if payload.get("entropy") is None
                else int(payload["entropy"])
            ),
            cache_stats=dict(payload.get("cache_stats", {})),
            degraded=bool(payload.get("degraded", False)),
        )


def _draw_chunk(
    payload: tuple[np.ndarray, SamplerConfig, str, list[np.random.SeedSequence]],
) -> tuple[list[SampleResult], dict]:
    """Worker entry point: one engine + cache per process, one rng per draw.

    Returns ``(results, cache_stats)``: every chunk ships its worker's
    per-tier cache counters back so the driver can aggregate a truthful
    ``cache_stats`` for multiprocess runs (they used to be dropped,
    leaving ``meta["cache"]`` empty exactly when a service fans out).
    """
    weights, config, variant, seeds = payload
    graph = WeightedGraph(weights, validate=False)
    engine = SamplerEngine(graph, config, variant=variant)
    results = [engine.run(np.random.default_rng(seed)) for seed in seeds]
    stats = engine.cache.stats() if engine.cache is not None else {}
    return results, stats


class EnsembleEngine:
    """Batched draws over one :class:`SamplerEngine` (or graph + config)."""

    def __init__(
        self,
        engine_or_graph: SamplerEngine | WeightedGraph,
        config: SamplerConfig | None = None,
        *,
        variant: str | None = None,
    ) -> None:
        if isinstance(engine_or_graph, SamplerEngine):
            # The engine already fixes config and variant; silently
            # ignoring conflicting overrides would sample the wrong law.
            if config is not None:
                raise GraphError(
                    "pass config when constructing from a graph, not "
                    "alongside an existing SamplerEngine"
                )
            if variant is not None and variant != engine_or_graph.variant:
                raise GraphError(
                    f"variant {variant!r} conflicts with the engine's "
                    f"{engine_or_graph.variant!r}"
                )
            self.engine = engine_or_graph
        else:
            self.engine = SamplerEngine(
                engine_or_graph,
                config,
                variant="approximate" if variant is None else variant,
            )

    # ------------------------------------------------------------------

    def run_sequential(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[SampleResult]:
        """``count`` draws sharing one rng stream and one warm cache.

        This is the backend of the facade's ``sample_many``: equivalent to
        a Python loop over ``sample(rng)``.
        """
        if count < 1:
            raise GraphError(f"count must be >= 1, got {count}")
        rng = np.random.default_rng(rng)
        return [self.engine.run(rng) for _ in range(count)]

    def sample_ensemble(
        self,
        count: int,
        *,
        seed: np.random.SeedSequence | np.random.Generator | int | None = None,
        jobs: int | None = None,
    ) -> EnsembleResult:
        """``count`` independent draws from spawned seeds, fanned over jobs.

        ``seed`` fixes the master :class:`~numpy.random.SeedSequence`
        (ints and generators are folded into one); each draw gets its own
        spawned child, so results do not depend on ``jobs``. ``jobs=None``
        uses all available CPUs (capped at ``count``).
        """
        if count < 1:
            raise GraphError(f"count must be >= 1, got {count}")
        master = self._seed_sequence(seed)
        seeds = master.spawn(count)
        jobs = self._resolve_jobs(jobs, count)

        start = time.perf_counter()
        degraded = False
        if jobs <= 1:
            results = [
                self.engine.run(np.random.default_rng(s)) for s in seeds
            ]
            cache_stats = self._local_cache_stats()
        else:
            results, worker_stats, degraded = self._run_parallel(seeds, jobs)
            # Degraded batches ran on the local engine, so its counters
            # are the truthful ones; healthy fan-outs aggregate what the
            # workers shipped back with their chunks.
            cache_stats = (
                self._local_cache_stats()
                if degraded
                else aggregate_cache_stats(worker_stats)
            )
        seconds = time.perf_counter() - start

        # SeedSequence entropy may be an int, a list of ints, or None;
        # record it only in the plain reproducible-scalar case.
        entropy = master.entropy if isinstance(master.entropy, int) else None
        return EnsembleResult(
            results=results,
            seconds=seconds,
            jobs=jobs,
            entropy=entropy,
            cache_stats=cache_stats,
            degraded=degraded,
        )

    def iter_ensemble(
        self,
        count: int,
        *,
        seed: np.random.SeedSequence | np.random.Generator | int | None = None,
        jobs: int | None = None,
        stats: dict | None = None,
    ):
        """Stream ``count`` independent draws, yielding each as it lands.

        Seeds are spawned exactly as in :meth:`sample_ensemble`, and every
        draw is keyed to its own spawned child -- so for the same master
        seed this generator yields the same trees and round bills, in the
        same order, as the batch call (and as any jobs count). With
        ``jobs > 1`` draws fan out over worker processes in small chunks
        and are yielded in draw order as their chunks complete; consumers
        see results incrementally instead of waiting for the full batch.

        ``stats``, when given, is a caller-owned dict that is filled in
        as the stream runs: aggregated per-tier cache counters from the
        workers (or the local engine), plus ``degraded: True`` if the
        process pool broke and the remaining draws fell back to the
        sequential path. It is complete once the generator is exhausted.

        Yields :class:`~repro.engine.results.SampleResult` instances.
        """
        if count < 1:
            raise GraphError(f"count must be >= 1, got {count}")
        master = self._seed_sequence(seed)
        seeds = master.spawn(count)
        jobs = self._resolve_jobs(jobs, count)
        engine = self.engine

        delivered = 0
        degraded = False
        worker_stats: list[dict] = []
        if jobs > 1:
            # Smaller chunks than the batch path (which slices count/jobs)
            # so results surface early; identical output either way since
            # every draw is keyed to its own spawned seed.
            chunk_size = max(1, (len(seeds) + 4 * jobs - 1) // (4 * jobs))
            payloads = self._chunk_payloads(seeds, chunk_size)
            pool = None
            try:
                pool = ProcessPoolExecutor(max_workers=jobs)
                futures = [
                    pool.submit(_draw_chunk, payload)
                    for payload in payloads
                ]
                for future in futures:
                    results, chunk_stats = future.result()
                    worker_stats.append(chunk_stats)
                    for result in results:
                        delivered += 1
                        yield result
            except (OSError, BrokenProcessPool, pickle.PicklingError) as error:
                # Same degradation contract as sample_ensemble: process
                # machinery failed, so finish the not-yet-yielded suffix
                # sequentially with the same per-draw seeds. Loudly: the
                # consumer sees a flagged stream, operators see a log.
                degraded = True
                _LOG.warning(
                    "ensemble stream degraded to sequential after %s: %s "
                    "(jobs=%d, delivered=%d, remaining=%d)",
                    type(error).__name__, error, jobs, delivered,
                    len(seeds) - delivered,
                )
            finally:
                # No `with` block: a consumer abandoning the stream must
                # not hang in executor shutdown until every queued chunk
                # finishes. Cancel what hasn't started, don't wait.
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
        for child in seeds[delivered:]:
            result = engine.run(np.random.default_rng(child))
            result.degraded = degraded
            yield result
        if stats is not None:
            if jobs <= 1:
                stats.update(self._local_cache_stats())
            elif degraded:
                # Completed chunks did real work before the pool broke;
                # fold their counters in with the local fallback's.
                stats.update(aggregate_cache_stats(
                    worker_stats + [self._local_cache_stats()]
                ))
            else:
                stats.update(aggregate_cache_stats(worker_stats))
            stats["degraded"] = degraded

    # ------------------------------------------------------------------

    @staticmethod
    def _seed_sequence(
        seed: np.random.SeedSequence | np.random.Generator | int | None,
    ) -> np.random.SeedSequence:
        """Fold any accepted seed shape into one master SeedSequence."""
        if isinstance(seed, np.random.SeedSequence):
            return seed
        if isinstance(seed, np.random.Generator):
            return np.random.SeedSequence(int(seed.integers(0, 1 << 63)))
        return np.random.SeedSequence(seed)

    @staticmethod
    def _resolve_jobs(jobs: int | None, count: int) -> int:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise GraphError(f"jobs must be >= 1, got {jobs}")
        return min(jobs, count)

    def _chunk_payloads(
        self, seeds: list[np.random.SeedSequence], chunk_size: int
    ) -> list[tuple]:
        """Contiguous seed chunks as :func:`_draw_chunk` worker payloads.

        The payload shape is the wire contract with the worker; batch and
        streaming paths must build it here so they can never drift.
        """
        engine = self.engine
        return [
            (
                engine.graph.weights,
                engine.config,
                engine.variant,
                seeds[low:low + chunk_size],
            )
            for low in range(0, len(seeds), chunk_size)
        ]

    def _local_cache_stats(self) -> dict:
        """The driver engine's own cache counters (empty when disabled)."""
        cache = self.engine.cache
        return dict(cache.stats()) if cache is not None else {}

    def _run_parallel(
        self, seeds: list[np.random.SeedSequence], jobs: int
    ) -> tuple[list[SampleResult], list[dict], bool]:
        """Fan contiguous seed chunks across processes; order-preserving.

        Returns ``(results, per_worker_cache_stats, degraded)``.
        """
        engine = self.engine
        payloads = self._chunk_payloads(seeds, (len(seeds) + jobs - 1) // jobs)
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                chunked = list(pool.map(_draw_chunk, payloads))
        except (OSError, BrokenProcessPool, pickle.PicklingError) as error:
            # Process *machinery* failures only (sandboxed fork, broken
            # pool, unpicklable payload): same seeds sequentially =>
            # identical results. Exceptions raised inside a worker's
            # sampling propagate unchanged -- retrying them serially
            # would just repeat the failure slowly. The fallback is
            # loud: logged here, flagged on every result it produced.
            _LOG.warning(
                "ensemble pool degraded to sequential after %s: %s "
                "(jobs=%d, draws=%d)",
                type(error).__name__, error, jobs, len(seeds),
            )
            results = [engine.run(np.random.default_rng(s)) for s in seeds]
            for result in results:
                result.degraded = True
            return results, [], True
        results = [result for chunk, _ in chunked for result in chunk]
        return results, [stats for _, stats in chunked], False


def sample_tree_ensemble(
    graph: WeightedGraph,
    count: int,
    *,
    config: SamplerConfig | None = None,
    variant: str = "approximate",
    seed: np.random.SeedSequence | np.random.Generator | int | None = None,
    jobs: int | None = None,
) -> EnsembleResult:
    """One-call batch API: ``count`` independent trees of ``graph``.

    Convenience wrapper building an :class:`EnsembleEngine` and calling
    :meth:`~EnsembleEngine.sample_ensemble`.
    """
    return EnsembleEngine(graph, config, variant=variant).sample_ensemble(
        count, seed=seed, jobs=jobs
    )
