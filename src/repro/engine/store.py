"""Tiered persistent derived-graph store (RAM LRU over a disk tier).

The Theorem 1 sampler's dominant cost is building subset-determined
numerics -- ShortCut/Schur matrices and the Lemma 7 power ladder -- which
are deterministic in ``(G, S, config)`` yet historically lived only in a
per-process in-memory LRU. Every ensemble worker, process restart, and
CLI invocation therefore paid the full cold cost again. This module adds
the missing tier:

- :class:`DiskTier` -- a content-addressed on-disk blob store. Each
  :class:`~repro.engine.cache.PhaseNumerics` entry becomes one directory
  of ``.npy`` (dense, loaded back memory-mapped) / ``.npz`` (CSR) blobs
  plus a ``meta.json`` charge recipe, keyed by a digest of the engine's
  ``(config fingerprint, subset)`` cache key. Writes are atomic
  (tmp directory + rename), so concurrent ensemble workers sharing one
  ``cache_dir`` can never observe a half-written entry; loads are
  corruption-tolerant (a bad blob is a miss, never a crash). Byte
  accounting evicts least-recently-used blobs past ``max_bytes``.
- :class:`TieredPhaseStore` -- the two-tier composite the engine talks
  to: memory hits stay in RAM, memory misses consult the disk tier and
  promote hits back into RAM, stores write through to disk. It exposes
  the same ``lookup``/``store``/``stats`` surface as
  :class:`~repro.engine.cache.DerivedGraphCache`, so
  :class:`~repro.engine.runner.SamplerEngine` is agnostic to whether its
  cache is one tier or two.

Reproducibility contract (property-tested): the disk tier cold, warm, or
disabled never changes sampled trees or round ledgers -- ``.npy``/``.npz``
round trips preserve float64 entries bit-for-bit, and cache hits replay
the recorded charge recipe exactly as the in-memory tier always has.

The same persistence directory also hosts this machine's sparse-crossover
calibration profile (:mod:`repro.linalg.calibrate`).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import shutil
import time
from pathlib import Path
from typing import Hashable

import numpy as np

from repro.core.placement_plan import PlacementPlan
from repro.engine.cache import DerivedGraphCache, PhaseNumerics
from repro.errors import ConfigError
from repro.linalg.backend import HAVE_SCIPY, is_sparse_matrix
from repro.linalg.matpow import PowerLadder

if HAVE_SCIPY:  # pragma: no branch - the CI image ships scipy
    import scipy.sparse as _sp

__all__ = [
    "DiskTier",
    "TieredPhaseStore",
    "open_phase_store",
    "resolve_cache_root",
    "DEFAULT_CACHE_ROOT_ENV",
]

STORE_FORMAT_VERSION = 1
DEFAULT_CACHE_ROOT_ENV = "REPRO_CACHE_DIR"
# The per-entry placement-plan blob (repro.core.placement_plan): midpoint
# laws and first-visit tables spilled next to the numerics so a warm
# restart skips the walk layer's re-classification too. Published by a
# single atomic file rename *into* an already-published entry directory;
# optional on read (a missing or bad plan blob is just a cold plan, never
# a miss on the numerics).
PLAN_BLOB = "plan.npz"
# Crash leftovers (tmp dirs whose writer died before the rename) are
# swept on open, but only once they are unambiguously stale -- a live
# concurrent writer's tmp dir must never be deleted from under it.
STALE_TMP_SECONDS = 3600.0


def resolve_cache_root(cache_dir: str | os.PathLike) -> Path:
    """Resolve a configured ``cache_dir`` to a concrete directory.

    The sentinel ``"auto"`` picks this machine's default persistent root:
    ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-spanning-trees``.
    Anything else is used verbatim (with ``~`` expansion).
    """
    if str(cache_dir) == "auto":
        env = os.environ.get(DEFAULT_CACHE_ROOT_ENV)
        if env:
            return Path(env).expanduser()
        return Path.home() / ".cache" / "repro-spanning-trees"
    return Path(cache_dir).expanduser()


def key_digest(key: Hashable) -> str:
    """Stable content address for an engine cache key.

    Engine keys are ``(config/graph fingerprint hex, subset tuple)`` --
    both have deterministic ``repr`` across processes, which is what lets
    separately spawned ensemble workers address the same blobs.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()


def _fault_hook(point: str, **payload) -> None:
    """Service-layer chaos hook, reachable only when faults are armed.

    Env-guarded so the engine never imports the service package on the
    production path (no layering inversion, no import cost): with
    ``REPRO_FAULTS`` unset this is one dict probe.
    """
    if not os.environ.get("REPRO_FAULTS"):
        return
    from repro.service.faults import fire

    fire(point, **payload)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_entry(directory: Path) -> None:
    """fsync every blob in ``directory``, then the directory itself.

    The atomic-rename publish protocol makes an entry visible all at
    once, but rename alone orders nothing on disk: after a host crash
    the journal may replay the rename *before* the data blocks of the
    files inside, surfacing a truncated-but-renamed blob that lookup
    trusts (meta.json present). Durability before visibility: flush the
    bytes, flush the tmp dir's entries, then rename.
    """
    for path in directory.iterdir():
        if path.is_file():
            _fsync_file(path)
    _fsync_file(directory)


def _save_matrix(directory: Path, stem: str, matrix) -> dict:
    """Write one matrix blob; returns its index record for ``meta.json``."""
    if is_sparse_matrix(matrix):
        _sp.save_npz(str(directory / f"{stem}.npz"), matrix)
        return {"format": "csr", "file": f"{stem}.npz"}
    array = np.ascontiguousarray(np.asarray(matrix))
    np.save(directory / f"{stem}.npy", array)
    return {"format": "dense", "file": f"{stem}.npy"}


def _blob_bytes(entry_dir: Path) -> int:
    """Summed payload bytes of one published entry (meta.json excluded)."""
    return sum(
        blob.stat().st_size
        for blob in entry_dir.iterdir()
        if blob.name != "meta.json"
    )


class _UnsupportedBlob(Exception):
    """A *valid* blob this process lacks the libraries to load.

    Distinct from corruption on purpose: the entry must be treated as a
    plain miss and left on disk for processes that can read it (e.g. a
    scipy-less reader sharing a cache_dir with sparse-backend writers
    must not delete their CSR entries).
    """


def _load_matrix(directory: Path, record: dict):
    """Load one matrix blob (dense blobs come back memory-mapped)."""
    path = directory / record["file"]
    if record["format"] == "csr":
        if not HAVE_SCIPY:
            raise _UnsupportedBlob("CSR blob requires scipy")
        return _sp.load_npz(str(path))
    if record["format"] != "dense":
        raise ValueError(f"unknown blob format {record['format']!r}")
    return np.load(path, mmap_mode="r")


class DiskTier:
    """Content-addressed on-disk :class:`PhaseNumerics` blobs, LRU by bytes.

    Layout under ``root``::

        blobs/<digest>/meta.json          # charge recipe + blob index
        blobs/<digest>/shortcut.npy|.npz  # one file per matrix
        blobs/<digest>/transition.npy|.npz
        blobs/<digest>/power_<k>.npy|.npz
        index.json                        # advisory LRU/byte ledger

    ``index.json`` is *advisory*: it speeds up eviction decisions but the
    blob directories are the source of truth, so a corrupt or stale index
    (concurrent writers race on it, last write wins) is rebuilt by
    scanning, never trusted into a crash.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        load_plans: bool = True,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError(
                f"disk tier needs max_bytes >= 1 (or None), got {max_bytes}"
            )
        self.root = Path(root)
        self.max_bytes = max_bytes
        # Reference-mode sessions never read plans; skipping the blob
        # load spares them the npz materialization on every disk hit
        # (and keeps dead plan bytes out of their RAM tier).
        self.load_plans = load_plans
        self.blobs = self.root / "blobs"
        self.blobs.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        # Stamp-validated parse cache for index.json: stats queries and
        # eviction decisions re-read the file only when its (mtime_ns,
        # size) changed, so attaching counters to every response costs
        # one stat, not a JSON parse (let alone a directory scan).
        self._index_cache: dict[str, int] | None = None
        self._index_stamp: tuple[int, int] | None = None
        self._sweep_stale_tmp()

    # -- lookup ---------------------------------------------------------

    def lookup(self, key: Hashable) -> PhaseNumerics | None:
        """Load an entry, or None on miss *or any* read failure.

        Corruption tolerance is the contract: a truncated blob, invalid
        JSON, or missing file means the entry never existed. The broken
        directory is removed best-effort (and dropped from the index) so
        the next store can rebuild it. An entry this process merely
        cannot *load* (CSR without scipy) is a plain miss and stays on
        disk for readers that can.
        """
        digest = key_digest(key)
        entry_dir = self.blobs / digest
        meta_path = entry_dir / "meta.json"
        if not meta_path.exists():
            self.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("version") != STORE_FORMAT_VERSION:
                raise ValueError(f"unsupported store version {meta.get('version')}")
            numerics = self._deserialize(entry_dir, meta)
        except _UnsupportedBlob:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            self._discard(digest)
            return None
        if self.load_plans:
            numerics.plan = self._load_plan(entry_dir)
        self.hits += 1
        self._touch(digest)
        self._heal_index(digest, entry_dir)
        return numerics

    def _load_plan(self, entry_dir: Path) -> PlacementPlan | None:
        """The entry's persisted placement plan, or None (never an error).

        A plan blob is an accelerator, not part of the numerics
        contract: any read failure degrades to a cold plan and removes
        the broken file so the next spill can republish it.
        """
        plan_path = entry_dir / PLAN_BLOB
        if not plan_path.exists():
            return None
        try:
            with np.load(plan_path) as arrays:
                return PlacementPlan.from_arrays(dict(arrays.items()))
        except Exception:
            plan_path.unlink(missing_ok=True)
            return None

    def _heal_index(self, digest: str, entry_dir: Path) -> None:
        """Re-register a live blob the ledger lost track of.

        Concurrent stores race read-modify-write on ``index.json``
        (last write wins), so a record can vanish while its blob stays
        published -- invisible to byte accounting and eviction. Touching
        the entry (hit or duplicate store) heals it: membership is one
        stamp-cached dict probe, the re-record only fires on actual
        loss.
        """
        if digest in self._read_index():
            return
        try:
            nbytes = _blob_bytes(entry_dir)
        except OSError:
            return
        self._record(digest, nbytes)

    def _discard(self, digest: str) -> None:
        """Drop a broken entry: blob directory *and* its index record.

        Removing only the directory would leave a phantom byte count in
        the index, inflating totals until it evicted a live entry.
        """
        shutil.rmtree(self.blobs / digest, ignore_errors=True)
        index = self._read_index()
        if digest in index:
            del index[digest]
            self._write_index(index)

    def _deserialize(self, entry_dir: Path, meta: dict) -> PhaseNumerics:
        arrays = meta["arrays"]
        shortcut = _load_matrix(entry_dir, arrays["shortcut"])
        transition = _load_matrix(entry_dir, arrays["transition"])
        powers: dict[int, object] = {}
        for exponent in meta["ladder_exponents"]:
            record = arrays[f"power_{exponent}"]
            if record.get("alias") == "transition":
                powers[int(exponent)] = transition
            else:
                powers[int(exponent)] = _load_matrix(entry_dir, record)
        ladder = PowerLadder.from_powers(
            powers,
            ell=int(meta["ladder_ell"]),
            bits=meta["ladder_bits"],
            squarings=int(meta["ladder_squarings"]),
            entry_words=meta["ladder_entry_words"],
        )
        return PhaseNumerics(
            shortcut=shortcut,
            transition=transition,
            order=[int(v) for v in meta["order"]],
            ladder=ladder,
            is_phase_one=bool(meta["is_phase_one"]),
            ladder_size=int(meta["ladder_size"]),
            ladder_squarings=int(meta["ladder_squarings"]),
            ladder_entry_words=meta["ladder_entry_words"],
            shortcut_squarings=int(meta["shortcut_squarings"]),
        )

    # -- store ----------------------------------------------------------

    def store(self, key: Hashable, numerics: PhaseNumerics) -> bool:
        """Persist an entry atomically; returns True on a fresh write.

        The entry is assembled in a private tmp directory, fsynced
        (blobs, then the tmp dir -- see :func:`_fsync_entry`), and
        published with a single ``os.rename``, so concurrent readers
        and writers either see the complete, *durable* entry or none of
        it -- even across a host crash mid-publish. Losing the rename
        race (another worker published the same digest first) and any
        I/O failure are silent non-events: the disk tier is best-effort,
        and a failed spill only costs a future recompute.
        """
        digest = key_digest(key)
        final_dir = self.blobs / digest
        if (final_dir / "meta.json").exists():
            self._touch(digest)
            self._heal_index(digest, final_dir)
            return False
        if final_dir.exists():
            # A published directory always contains meta.json (written
            # before the atomic rename), so a dir without one is debris
            # from an interrupted delete. Left in place it would wedge
            # this digest forever: lookups miss and the rename below
            # fails with ENOTEMPTY on every attempt.
            shutil.rmtree(final_dir, ignore_errors=True)
        tmp_dir = self.blobs / f".tmp-{digest}-{os.getpid()}-{time.monotonic_ns()}"
        try:
            tmp_dir.mkdir(parents=True)
            nbytes = self._serialize(tmp_dir, numerics)
            if self.max_bytes is not None and nbytes > self.max_bytes:
                # Refused residency, mirroring the RAM tier: publishing
                # an entry bigger than the whole budget would have the
                # eviction pass flush every other blob and then the
                # entry itself -- pure I/O churn with zero retained
                # cache value.
                shutil.rmtree(tmp_dir, ignore_errors=True)
                return False
            _fault_hook("store.publish", dir=str(tmp_dir))
            _fsync_entry(tmp_dir)
            os.rename(tmp_dir, final_dir)
            # Make the rename itself durable: the parent directory entry
            # is what a crash-recovering journal replays.
            _fsync_file(self.blobs)
        except OSError:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            return False
        self.writes += 1
        self._record(digest, nbytes)
        return True

    def _serialize(self, directory: Path, numerics: PhaseNumerics) -> int:
        arrays: dict[str, dict] = {}
        arrays["shortcut"] = _save_matrix(directory, "shortcut", numerics.shortcut)
        arrays["transition"] = _save_matrix(
            directory, "transition", numerics.transition
        )
        ladder = numerics.ladder
        for exponent in ladder.exponents:
            power = ladder.power(exponent)
            if power is numerics.transition:
                # With bits=None the base power *is* the transition
                # matrix; aliasing skips a duplicate multi-MB blob and
                # restores the identity (and nbytes dedup) on load.
                arrays[f"power_{exponent}"] = {"alias": "transition"}
            else:
                arrays[f"power_{exponent}"] = _save_matrix(
                    directory, f"power_{exponent}", power
                )
        meta = {
            "version": STORE_FORMAT_VERSION,
            "is_phase_one": bool(numerics.is_phase_one),
            "ladder_size": int(numerics.ladder_size),
            "ladder_squarings": int(numerics.ladder_squarings),
            "ladder_entry_words": numerics.ladder_entry_words,
            "shortcut_squarings": int(numerics.shortcut_squarings),
            "order": [int(v) for v in numerics.order],
            "ladder_ell": int(ladder.ell),
            "ladder_bits": ladder.bits,
            "ladder_exponents": [int(k) for k in ladder.exponents],
            "arrays": arrays,
            "nbytes": int(numerics.nbytes()),
        }
        # meta.json is written last inside the tmp dir; its presence in
        # the published dir is what lookup treats as "entry exists".
        (directory / "meta.json").write_text(json.dumps(meta))
        return _blob_bytes(directory)

    def store_plan(self, key: Hashable, plan: PlacementPlan) -> bool:
        """Publish (or refresh) an entry's placement-plan blob.

        The plan spills *into* an already-published numerics entry (a
        plan without its numerics is useless, and lookup only reads
        blobs under a meta.json-bearing directory). One atomic
        ``os.replace`` of a single file, so concurrent workers racing on
        the same digest just last-write-win a bit-equal payload. Returns
        True when the blob was written.
        """
        digest = key_digest(key)
        entry_dir = self.blobs / digest
        if not (entry_dir / "meta.json").exists():
            return False
        arrays = plan.export_arrays()
        if len(arrays) <= 1:  # format stamp only: nothing worth spilling
            return False
        tmp = self.blobs / (
            f".tmp-plan-{digest}-{os.getpid()}-{time.monotonic_ns()}.npz"
        )
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, entry_dir / PLAN_BLOB)
            _fsync_file(entry_dir)  # durability for the replace itself
        except OSError:
            tmp.unlink(missing_ok=True)
            return False
        try:
            self._record(digest, _blob_bytes(entry_dir))
        except OSError:
            pass
        return True

    # -- index / eviction ----------------------------------------------

    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _index_file_stamp(self) -> tuple[int, int] | None:
        try:
            stat = self._index_path().stat()
            return (stat.st_mtime_ns, stat.st_size)
        except OSError:
            return None

    def _read_index(self) -> dict[str, int]:
        """The ``digest -> blob bytes`` ledger (stamp-cached, self-healing).

        Recency lives in each entry's ``meta.json`` mtime (touched on
        hits), *not* in the index -- so the hit path never rewrites this
        file, and concurrent workers only race on it during stores and
        evictions, where last-write-wins is healed by the rebuild scan.
        """
        stamp = self._index_file_stamp()
        if stamp is not None and stamp == self._index_stamp:
            return dict(self._index_cache or {})
        try:
            raw = json.loads(self._index_path().read_text())
            if not isinstance(raw, dict):
                raise ValueError("index is not an object")
            index = {str(digest): int(nbytes) for digest, nbytes in raw.items()}
        except Exception:
            index = self._rebuild_index()
        self._index_cache = dict(index)
        self._index_stamp = stamp
        return index

    def _rebuild_index(self) -> dict[str, int]:
        """Source-of-truth scan over the blob directories."""
        index: dict[str, int] = {}
        if not self.blobs.is_dir():
            return index
        for entry_dir in self.blobs.iterdir():
            if entry_dir.name.startswith(".tmp-") or not entry_dir.is_dir():
                continue
            if not (entry_dir / "meta.json").exists():
                continue
            try:
                index[entry_dir.name] = _blob_bytes(entry_dir)
            except OSError:
                continue
        return index

    def _write_index(self, index: dict[str, int]) -> None:
        tmp = self._index_path().with_name(
            f".index-{os.getpid()}-{time.monotonic_ns()}.tmp"
        )
        try:
            tmp.write_text(json.dumps(index))
            os.replace(tmp, self._index_path())
        except OSError:
            tmp.unlink(missing_ok=True)
        self._index_cache = dict(index)
        self._index_stamp = self._index_file_stamp()

    def _record(self, digest: str, nbytes: int) -> None:
        index = self._read_index()
        index[digest] = int(nbytes)
        index = self._evict_over_budget(index, keep=digest)
        self._write_index(index)

    def _touch(self, digest: str) -> None:
        """Refresh an entry's LRU clock: one utime, no index rewrite."""
        try:
            os.utime(self.blobs / digest / "meta.json")
        except OSError:
            pass

    def _evict_over_budget(
        self, index: dict[str, int], *, keep: str | None = None
    ) -> dict[str, int]:
        if self.max_bytes is None:
            return index
        total = sum(index.values())
        if total <= self.max_bytes:
            return index
        # LRU clock = meta.json mtime; a record whose directory vanished
        # (concurrent eviction, corruption cleanup) is a phantom -- drop
        # it from the ledger instead of letting its bytes evict live
        # entries. ``keep`` (the just-stored entry) is evicted last.
        used: dict[str, float] = {}
        for digest in list(index):
            try:
                used[digest] = (self.blobs / digest / "meta.json").stat().st_mtime
            except OSError:
                total -= index.pop(digest)
        order = sorted(used, key=lambda d: (d == keep, used[d]))
        for digest in order:
            if total <= self.max_bytes:
                break
            shutil.rmtree(self.blobs / digest, ignore_errors=True)
            total -= index.pop(digest)
            self.evictions += 1
        return index

    def _sweep_stale_tmp(self) -> None:
        """Remove crash leftovers old enough to be provably abandoned."""
        now = time.time()
        try:
            candidates = list(self.blobs.iterdir())
        except OSError:
            return
        for entry in candidates:
            if not entry.name.startswith(".tmp-"):
                continue
            try:
                if now - entry.stat().st_mtime > STALE_TMP_SECONDS:
                    if entry.is_dir():
                        shutil.rmtree(entry, ignore_errors=True)
                    else:  # abandoned single-file spill (plan blobs)
                        entry.unlink(missing_ok=True)
            except OSError:
                continue

    # -- maintenance (the `python -m repro cache` surface) ---------------

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries down to ``max_bytes``.

        One-shot maintenance eviction (the CLI's ``cache --prune-to``),
        independent of the tier's configured budget; ``0`` empties the
        store. Returns the number of entries evicted.
        """
        if max_bytes < 0:
            raise ConfigError(f"prune target must be >= 0, got {max_bytes}")
        before = self.evictions
        original = self.max_bytes
        self.max_bytes = max_bytes
        try:
            self._write_index(self._evict_over_budget(self._read_index()))
        finally:
            self.max_bytes = original
        return self.evictions - before

    def prune_expired(self, max_age_seconds: float) -> int:
        """Evict entries not touched within ``max_age_seconds``.

        TTL maintenance for orphaned blobs (the CLI's ``cache
        --prune-expired``): the recency clock is each entry's
        ``meta.json`` mtime -- refreshed on every hit -- so "expired"
        means "no session has read or written this entry within the
        window". Records whose directory or clock vanished (phantoms
        left by concurrent eviction or corruption cleanup) are expired
        by definition and dropped from the ledger alongside their
        directory debris. Returns the number of entries removed.
        """
        if not math.isfinite(max_age_seconds) or max_age_seconds < 0:
            raise ConfigError(
                f"expiry age must be a finite number of seconds >= 0, "
                f"got {max_age_seconds!r}"
            )
        cutoff = time.time() - max_age_seconds
        index = self._read_index()
        before = self.evictions
        for digest in list(index):
            try:
                clock = (self.blobs / digest / "meta.json").stat().st_mtime
            except OSError:
                clock = None  # phantom record: directory or clock gone
            if clock is None or clock <= cutoff:
                shutil.rmtree(self.blobs / digest, ignore_errors=True)
                del index[digest]
                self.evictions += 1
        self._write_index(index)
        return self.evictions - before

    def clear(self) -> int:
        """Delete every published entry; returns how many were removed."""
        removed = self.entry_count()
        shutil.rmtree(self.blobs, ignore_errors=True)
        self.blobs.mkdir(parents=True, exist_ok=True)
        self._write_index({})
        return removed

    # -- introspection --------------------------------------------------

    def entry_count(self) -> int:
        """Number of published entries per the (stamp-cached) index."""
        return len(self._read_index())

    def total_bytes(self) -> int:
        """Summed blob bytes per the (rebuilt-if-needed) index."""
        return sum(self._read_index().values())

    def stats(self) -> dict[str, int]:
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "spills": self.writes,
            "disk_evictions": self.evictions,
            "disk_entries": self.entry_count(),
            "disk_bytes": int(self.total_bytes()),
        }


class TieredPhaseStore:
    """RAM LRU over a shared disk tier, behind the one-tier cache surface.

    ``lookup`` serves memory hits directly, promotes disk hits into
    memory, and only then reports a miss; ``store`` writes through to
    disk so separately spawned worker processes see entries the moment
    they exist (spill-on-evict would leave workers cold exactly while
    the first process is busiest). Byte budgets are per tier.
    """

    def __init__(self, memory: DerivedGraphCache, disk: DiskTier) -> None:
        self.memory = memory
        self.disk = disk
        self.promotes = 0
        self.full_misses = 0

    def __len__(self) -> int:
        return len(self.memory)

    def lookup(self, key: Hashable) -> PhaseNumerics | None:
        entry = self.memory.lookup(key)
        if entry is not None:
            return entry
        entry = self.disk.lookup(key)
        if entry is not None:
            self.promotes += 1
            self.memory.store(key, entry)
            return entry
        self.full_misses += 1
        return None

    def store(self, key: Hashable, numerics: PhaseNumerics) -> None:
        self.memory.store(key, numerics)
        self.disk.store(key, numerics)

    def store_plan(self, key: Hashable, plan: PlacementPlan) -> None:
        """Spill a grown placement plan to the shared disk tier.

        The RAM tier needs no write (the plan object already hangs off
        the resident :class:`PhaseNumerics`); the disk blob is what lets
        worker processes and future sessions warm-start classification.
        """
        self.disk.store_plan(key, plan)

    def refresh(self, key: Hashable) -> None:
        """Re-measure the RAM tier's copy of a plan-bearing entry."""
        self.memory.refresh(key)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier; optionally delete the disk tier's blobs."""
        self.memory.clear()
        if disk:
            self.disk.clear()

    def stats(self) -> dict[str, int]:
        """Flat per-tier counters (all ints, wire- and meta-friendly)."""
        stats = dict(self.memory.stats())
        # "misses" means *full* misses -- a disk hit is not a recompute.
        stats["misses"] = self.full_misses
        stats["promotes"] = self.promotes
        stats.update(self.disk.stats())
        return stats


def open_phase_store(config) -> DerivedGraphCache | TieredPhaseStore | None:
    """The cache the engine/session should use for ``config``.

    ``None`` when caching is disabled; a plain in-memory
    :class:`~repro.engine.cache.DerivedGraphCache` when no ``cache_dir``
    is configured; a :class:`TieredPhaseStore` over that directory
    otherwise. The disk tier requires scipy only when entries are CSR --
    opening the store itself never does.
    """
    if not config.derived_cache:
        return None
    memory = DerivedGraphCache(
        config.derived_cache_entries, max_bytes=config.cache_memory_bytes
    )
    if config.cache_dir is None:
        return memory
    disk = DiskTier(
        resolve_cache_root(config.cache_dir),
        max_bytes=config.cache_disk_bytes,
        load_plans=getattr(config, "placement_mode", "batched") == "batched",
    )
    return TieredPhaseStore(memory, disk)
