"""Single-draw execution engine (the algorithmic core of Theorem 1).

:class:`SamplerEngine` owns everything one draw of the sampler needs --
phase iteration, derived-graph construction (through the
:class:`~repro.engine.cache.DerivedGraphCache`), matmul backend
resolution (:mod:`repro.engine.backends`), the distributed walk
(:func:`repro.core.phase.run_phase_walk`), and Algorithm 4's first-visit
edges. The public :class:`repro.core.sampler.CongestedCliqueTreeSampler`
is a thin facade over this class; batch workloads drive it through
:class:`repro.engine.ensemble.EnsembleEngine`.

Charging discipline: every run charges its full analytic (or measured)
round bill to its own per-run ledger, whether or not the numerics came
from the cache -- the model counts rounds per execution. Cache hits
replay the recorded charge recipe (see
:class:`~repro.engine.cache.PhaseNumerics`), so cached and uncached runs
produce identical trees *and* identical round totals.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.clique.cost import RoundLedger
from repro.clique.network import CongestedClique
from repro.clique.routing import broadcast_cc_rounds
from repro.core.config import SamplerConfig
from repro.core.phase import PhaseStats, run_phase_walk
from repro.core.placement_plan import PlacementPlan
from repro.core.variants import get_variant
from repro.engine.backends import MatmulBackend, make_matmul_backend
from repro.engine.cache import (
    DerivedGraphCache,
    PhaseNumerics,
    config_fingerprint,
)
from repro.engine.store import TieredPhaseStore, open_phase_store
from repro.engine.results import SampleResult
from repro.errors import ConfigError, GraphError, SamplingError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import is_spanning_tree, tree_key
from repro.linalg.backend import resolve_linalg_backend
from repro.linalg.matpow import PowerLadder
from repro.linalg.shortcut import first_visit_edge_distribution

__all__ = ["SamplerEngine"]


class SamplerEngine:
    """Executes full draws of the Theorem 1 / Appendix 5 sampler.

    Parameters
    ----------
    graph:
        Connected input graph (validated here, so facades inherit the
        checks).
    config:
        Algorithm knobs; see :class:`~repro.core.config.SamplerConfig`.
    variant:
        Any engine-driven name from the :mod:`repro.core.variants`
        registry: ``"approximate"`` (Theorem 1), ``"exact"``
        (Appendix 5), or ``"broadcast"`` (the Anari-Haqi Broadcast
        Congested Clique sampler).
    cache:
        Optional externally owned cache: a :class:`DerivedGraphCache`
        or a :class:`~repro.engine.store.TieredPhaseStore` (both expose
        ``lookup``/``store``/``stats``). ``None`` opens one per the
        config via :func:`~repro.engine.store.open_phase_store` (or
        disables caching when ``config.derived_cache`` is false).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        config: SamplerConfig | None = None,
        *,
        variant: str = "approximate",
        cache: DerivedGraphCache | TieredPhaseStore | None = None,
    ) -> None:
        graph.require_connected()
        if graph.n < 2:
            raise GraphError("sampling needs at least 2 vertices")
        # The registry is the single source of truth for what a variant
        # name means (rho policy, placement discipline, communication
        # model); the engine only accepts specs it can drive. Unknown
        # names keep the engine's historical GraphError contract;
        # ConfigError stays the registry/request-layer type.
        try:
            spec = get_variant(variant)
        except ConfigError as exc:
            raise GraphError(str(exc)) from None
        if not spec.engine_driven:
            raise GraphError(
                f"variant {variant!r} has a standalone driver and is not "
                "run by SamplerEngine (see repro.core.fastcover)"
            )
        self.graph = graph
        self.config = config if config is not None else SamplerConfig()
        self.variant = variant
        self.spec = spec
        if spec.comm_model == "broadcast" and (
            self.config.matmul_backend != "analytic"
        ):
            raise ConfigError(
                "the broadcast variant bills rounds in the Broadcast "
                "Congested Clique; the unicast matmul protocol "
                f"{self.config.matmul_backend!r} cannot realize it "
                "(use matmul_backend='analytic')"
            )
        if not (0 <= self.config.start_vertex < graph.n):
            raise GraphError(
                f"start vertex {self.config.start_vertex} out of range"
            )
        if cache is None:
            # Per the config: in-memory LRU, a tiered store over
            # config.cache_dir (how separately spawned ensemble workers
            # warm-start from each other), or None when disabled.
            cache = open_phase_store(self.config)
        self.cache = cache
        # Numerics realization (dense numpy vs scipy CSR), resolved once
        # per engine: "auto" decides from the graph's size and density.
        self.linalg = resolve_linalg_backend(self.config, graph)
        # Cache entries are deterministic functions of (graph, config,
        # resolved numerics backend); key them under a fingerprint over
        # the *complete* configuration so an externally shared cache can
        # never serve numerics computed for another graph or any
        # differing configuration (a partial field list silently went
        # stale whenever a numerics-affecting knob was added). The
        # variant is excluded on purpose: it changes rho, never the
        # derived graphs -- which is what lets a session's approximate
        # and exact engines warm each other.
        digest = hashlib.sha1()
        digest.update(np.ascontiguousarray(graph.weights).tobytes())
        digest.update(
            config_fingerprint(
                self.config,
                resolved_ell=self.config.resolve_ell(graph.n),
                linalg_backend=self.linalg.name,
            ).encode()
        )
        self._cache_token = digest.hexdigest()
        # Batched placement (the default) attaches a PlacementPlan to
        # every phase's numerics entry; reference mode leaves entries
        # untouched and runs the seed-faithful per-pair path. Both draw
        # byte-identical trees, which is why the mode sits outside the
        # cache fingerprint (NON_NUMERICS_FIELDS).
        self.placement_mode = self.config.placement_mode
        # The RNG contract actually in force: "v2" (block draws against
        # plan CDFs) needs a plan, so reference mode always consumes
        # v1-style bits regardless of config.rng_contract.
        self.rng_contract = self.config.effective_rng_contract
        # Plans this run touched, for the end-of-run disk spill:
        # key -> plan (insertion order keeps spills deterministic).
        self._touched_plans: dict = {}

    # ------------------------------------------------------------------

    def run(self, rng: np.random.Generator | None = None) -> SampleResult:
        """One full draw: phase loop, validation, diagnostics."""
        rng = np.random.default_rng(rng)
        graph = self.graph
        n = graph.n
        config = self.config
        clique = CongestedClique(n)
        ledger = clique.ledger
        rho = config.resolve_rho(n, variant=self.variant)
        ell = config.resolve_ell(n)

        # The unvisited set is maintained incrementally as a boolean mask:
        # each phase reads it in O(n) (no per-phase set rebuild or sort --
        # np.flatnonzero already yields ascending order).
        unvisited = np.ones(n, dtype=bool)
        unvisited[config.start_vertex] = False
        num_visited = 1
        current = config.start_vertex
        tree_edges: list[tuple[int, int]] = []
        phase_stats: list[PhaseStats] = []
        max_phases = 4 * n + 8

        phase_index = 0
        while num_visited < n:
            phase_index += 1
            if phase_index > max_phases:
                raise SamplingError(
                    f"exceeded {max_phases} phases; sampler is stuck"
                )
            others = np.flatnonzero(unvisited)
            # `current` is always already visited, so insert it at its
            # sorted position to form S = unvisited + {current}.
            position = int(np.searchsorted(others, current))
            subset = [int(v) for v in np.insert(others, position, current)]
            with ledger.section(f"phase-{phase_index}"):
                new_edges, walk_orig, stats = self._run_phase(
                    subset, current, rho, ell, rng, clique
                )
            tree_edges.extend(new_edges)
            for v in walk_orig:
                if unvisited[v]:
                    unvisited[v] = False
                    num_visited += 1
            current = walk_orig[-1]
            phase_stats.append(stats)

        self._spill_plans()
        if len(tree_edges) != n - 1 or not is_spanning_tree(graph, tree_edges):
            raise SamplingError(
                "sampler produced an invalid spanning tree; this is a bug"
            )  # pragma: no cover
        return SampleResult(
            tree=tree_key(tree_edges),
            rounds=ledger.total_rounds(),
            phases=phase_index,
            ledger=ledger,
            phase_stats=phase_stats,
            clique_stats=clique.stats(),
        )

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        subset: list[int],
        start: int,
        rho: int,
        ell: int,
        rng: np.random.Generator,
        clique: CongestedClique,
    ) -> tuple[list[tuple[int, int]], list[int], PhaseStats]:
        """Execute one phase; returns (first-visit edges, walk, stats)."""
        graph = self.graph
        n = graph.n
        config = self.config
        ledger = clique.ledger
        is_phase_one = len(subset) == n

        # --- Steps 2-3 of Outline 3: derived graphs + power ladder,
        #     through the cache (numerics) and backend (charges). --------
        numerics = self._phase_numerics(subset, is_phase_one, ell, ledger)
        shortcut = numerics.shortcut
        transition = numerics.transition
        order = numerics.order
        index_of = {v: i for i, v in enumerate(order)}
        plan = numerics.plan if self.placement_mode == "batched" else None

        # --- Steps 4-5: distributed truncated walk. ---------------------
        # Broadcast variant: the walk machinery consumes the identical
        # RNG stream but issues no unicast charges (clique=None); the
        # phase's Broadcast-CC bill is charged analytically below from
        # the realized walk statistics, which are seed-deterministic --
        # so cached, cold, and cross-host runs bill identically.
        broadcast = self.spec.comm_model == "broadcast"
        rho_eff = min(rho, len(subset))
        stats = PhaseStats(subset_size=len(subset), rho_eff=rho_eff)
        local_walk = run_phase_walk(
            transition,
            index_of[start],
            rho_eff,
            config,
            rng,
            clique=None if broadcast else clique,
            ladder=numerics.ladder,
            exact_placement=self.spec.exact_placement,
            stats=stats,
            plan=plan,
            contract=self.rng_contract,
        )
        walk_orig = [order[i] for i in local_walk]

        # --- Step 6: first-visit edges via ShortCut(G, S) (Algorithm 4).
        # The into-S weight vector is a function of (G, S) alone; hoist
        # it out of the per-new-vertex loop (same per-row pairwise sums,
        # so the sampled law is unchanged). With a plan, each (prev, v)
        # step's whole distribution is additionally memoized across
        # draws -- the cached arrays are what the cold evaluation
        # returned, so the edge draw below sees identical probabilities.
        s_mask = np.zeros(n, dtype=bool)
        s_mask[subset] = True
        weight_into_s = graph.weights[:, s_mask].sum(axis=1)
        edges: list[tuple[int, int]] = []
        seen = {walk_orig[0]}
        steps: list[tuple[int, int]] = []
        for position in range(1, len(walk_orig)):
            v = walk_orig[position]
            if v in seen:
                continue
            seen.add(v)
            steps.append((walk_orig[position - 1], v))
        if self.rng_contract == "v2" and plan is not None and steps:
            # Block contract: the phase's first-visit edges share one
            # uniform vector, each resolved against the memoized
            # cumulative distribution of its (prev, v) step.
            uniforms = rng.random(len(steps))
            for (prev, v), uniform in zip(steps, uniforms):

                def _cold_distribution(prev=prev, v=v):
                    return first_visit_edge_distribution(
                        graph, subset, shortcut, prev, v,
                        weight_into_s=weight_into_s,
                    )

                neighbors, cdf = plan.first_visit_cdf(
                    prev, v, _cold_distribution
                )
                index = int(cdf.searchsorted(uniform * cdf[-1], "right"))
                u = int(neighbors[min(index, len(cdf) - 1)])
                edges.append((u, v))
                stats.new_vertices.append(v)
        else:
            for prev, v in steps:

                def _cold_distribution(prev=prev, v=v):
                    return first_visit_edge_distribution(
                        graph, subset, shortcut, prev, v,
                        weight_into_s=weight_into_s,
                    )

                if plan is not None:
                    neighbors, probabilities = plan.first_visit(
                        prev, v, _cold_distribution
                    )
                else:
                    neighbors, probabilities = _cold_distribution()
                u = int(
                    neighbors[int(rng.choice(len(neighbors), p=probabilities))]
                )
                edges.append((u, v))
                stats.new_vertices.append(v)
        if broadcast:
            self._charge_broadcast_phase(ledger, n, stats, len(edges))
        else:
            # Algorithm 4's communication: O(1) rounds for the whole phase
            # (each new vertex's machine gathers its neighbors' Q-entries).
            clique.charge_step(
                "first-visit-edges",
                n,
                n,
                total_words=len(edges) * 2 + n,
            )
        return edges, walk_orig, stats

    def _charge_broadcast_phase(
        self,
        ledger: RoundLedger,
        n: int,
        stats: PhaseStats,
        num_edges: int,
    ) -> None:
        """One phase's Broadcast-CC walk-layer bill (Anari-Haqi, Sec. 3).

        Everything here is a closed form of the realized walk statistics
        (segment count, level count, fallback count, edge count), which
        are functions of the RNG stream alone -- never of cache state --
        so warm and cold runs charge byte-identical ledgers. The ladder
        squarings are billed separately through the
        broadcast-collective matmul backend.
        """
        category = self.spec.bandwidth_category
        log_n = max(1, math.ceil(math.log2(max(n, 2))))
        # Each fill segment's leader announces its end-law draw: one
        # word per segment (1 nominal + one per Las-Vegas extension).
        ledger.charge(
            category,
            broadcast_cc_rounds(1 + stats.extensions, n),
            note="segment end draws",
        )
        # Per doubling level, machines publish their midpoint sketches
        # and the leader announces the truncation index: O(log n)
        # broadcast rounds per level in the Anari-Haqi accounting.
        if stats.levels:
            ledger.charge(
                category, stats.levels * log_n, note="level sketches"
            )
        # Section 5.2 precision fallback: the leader collects the whole
        # network -- n^2 words through the aggregate n-words-per-round
        # broadcast budget.
        if stats.brute_force_fallbacks:
            ledger.charge(
                category,
                stats.brute_force_fallbacks * broadcast_cc_rounds(n * n, n),
                note="precision fallback (collect network)",
            )
        # Algorithm 4's first-visit edges, announced to everyone.
        ledger.charge(
            category,
            broadcast_cc_rounds(2 * num_edges + n, n),
            note="first-visit edges",
        )

    # ------------------------------------------------------------------

    def _phase_numerics(
        self,
        subset: list[int],
        is_phase_one: bool,
        ell: int,
        ledger: RoundLedger,
    ) -> PhaseNumerics:
        """This phase's numerics: cache-replayed or built cold.

        Either way the per-run ledger receives the full charges of a cold
        build.
        """
        # The communication model picks the charging backend: broadcast
        # variants bill every product as polylog sketch rounds in the
        # broadcast-bandwidth category; unicast variants use whichever
        # protocol the config names. Numerics are identical either way,
        # which is what lets all engine variants share cache entries.
        backend_name = (
            "broadcast-collective"
            if self.spec.comm_model == "broadcast"
            else self.config.matmul_backend
        )
        backend = make_matmul_backend(backend_name, len(subset), ledger)
        key = (self._cache_token, tuple(subset))
        cached = self.cache.lookup(key) if self.cache is not None else None
        if cached is not None:
            self._replay_charges(cached, ledger, backend)
            self._attach_plan(key, cached)
            return cached
        numerics = self._build_numerics(
            subset, is_phase_one, ell, ledger, backend
        )
        if self.cache is not None:
            self.cache.store(key, numerics)
        self._attach_plan(key, numerics)
        return numerics

    def _attach_plan(self, key, numerics: PhaseNumerics) -> None:
        """Ensure a batched-mode entry carries a placement plan.

        The plan hangs off the cache entry (same lifetime, same key), so
        every engine sharing the entry -- across draws, variants, and
        sessions -- shares one classification. Touched plans are
        remembered for the end-of-run disk spill.
        """
        if self.placement_mode != "batched":
            return
        if numerics.plan is None:
            numerics.plan = PlacementPlan()
        if self.cache is not None:
            self._touched_plans[key] = numerics.plan

    def _spill_plans(self) -> None:
        """Write grown plans through to the disk tier (end of a run).

        Only the tiered store persists plans (``store_plan``); the plain
        in-memory cache keeps them by attachment. Spilling once per run
        -- not per phase -- bounds write churn: a warm steady-state draw
        adds nothing and spills nothing. Every touched entry is also
        re-measured (``refresh``) so the RAM tier's byte ledger tracks
        plan growth -- including DP scratch, which never spills.
        """
        touched, self._touched_plans = self._touched_plans, {}
        store = getattr(self.cache, "store_plan", None)
        refresh = getattr(self.cache, "refresh", None)
        for key, plan in touched.items():
            if plan.dirty and store is not None:
                store(key, plan)
                plan.dirty = False
            if refresh is not None:
                refresh(key)

    def _build_numerics(
        self,
        subset: list[int],
        is_phase_one: bool,
        ell: int,
        ledger: RoundLedger,
        backend: MatmulBackend,
    ) -> PhaseNumerics:
        """Cold path: compute shortcut/Schur/ladder and charge as we go."""
        graph = self.graph
        config = self.config
        shortcut, shortcut_squarings = self._compute_shortcut(
            subset, is_phase_one, ledger
        )
        if is_phase_one:
            transition = self.linalg.transition_matrix(graph)
            order = list(range(graph.n))
        else:
            transition, order = self._compute_schur(subset, shortcut, ledger)
        ladder = PowerLadder(
            transition,
            ell,
            bits=config.precision_bits,
            ledger=ledger,
            matmul=backend,
            note="phase ladder",
        )
        return PhaseNumerics(
            shortcut=shortcut,
            transition=transition,
            order=order,
            ladder=ladder,
            is_phase_one=is_phase_one,
            ladder_size=transition.shape[0],
            ladder_squarings=ladder.squarings,
            ladder_entry_words=ladder.entry_words,
            shortcut_squarings=shortcut_squarings,
        )

    def _replay_charges(
        self,
        numerics: PhaseNumerics,
        ledger: RoundLedger,
        backend: MatmulBackend,
    ) -> None:
        """Charge a cache hit exactly what a cold build would have charged."""
        n = self.graph.n
        if numerics.shortcut_squarings:
            self._charge_derived_matmul(
                ledger,
                2 * n,
                count=numerics.shortcut_squarings,
                note="shortcut graph (cached numerics)",
            )
        if not numerics.is_phase_one:
            self._charge_derived_matmul(
                ledger, n, count=1, note="schur graph (cached numerics)"
            )
        backend.charge_replay(
            numerics.ladder_size,
            count=numerics.ladder_squarings,
            entry_words=numerics.ladder_entry_words,
            note="phase ladder (cached numerics)",
        )

    def _compute_shortcut(
        self, subset: list[int], is_phase_one: bool, ledger: RoundLedger
    ) -> tuple[np.ndarray, int]:
        """ShortCut(G, S) matrix + its Corollary 2 round charge.

        Returns ``(matrix, squarings)`` with ``squarings`` the charged
        count (0 in phase 1), recorded for cache replay.
        """
        config = self.config
        beta = config.normalizer_floor(self.graph.n)
        shortcut = self.linalg.shortcut_matrix(
            self.graph, subset, method=config.shortcut_method, beta=beta
        )
        squarings = 0
        if not is_phase_one:
            # Corollary 2: log(k) squarings of the 2n x 2n auxiliary chain.
            squarings = max(
                1,
                math.ceil(
                    math.log2(
                        max(2.0, self.graph.n ** 3 * math.log(1.0 / beta))
                    )
                ),
            )
            self._charge_derived_matmul(
                ledger, 2 * self.graph.n, count=squarings, note="shortcut graph"
            )
        return shortcut, squarings

    def _charge_derived_matmul(
        self, ledger: RoundLedger, size: int, *, count: int, note: str
    ) -> None:
        """Bill derived-graph products in the variant's comm model.

        Unicast variants keep the analytic matmul charge they always
        had; broadcast variants bill the same product count as sketch
        rounds in the broadcast-bandwidth category (these only arise
        when an explicit ``rho`` override forces later phases -- the
        default full-cover policy never builds a Schur phase).
        """
        if self.spec.comm_model == "broadcast":
            rounds = ledger.model.broadcast_matmul_rounds(size) * count
            ledger.charge(self.spec.bandwidth_category, rounds, note)
        else:
            ledger.charge_matmul(size, count=count, note=note)

    def _compute_schur(
        self,
        subset: list[int],
        shortcut: np.ndarray,
        ledger: RoundLedger,
    ) -> tuple[np.ndarray, list[int]]:
        """Schur(G, S) transition matrix + its Corollary 3 round charge."""
        transition, order = self.linalg.schur_transition(
            self.graph, subset, shortcut, method=self.config.schur_method
        )
        # Corollary 3: one extra product (QR) on top of the shortcut work.
        self._charge_derived_matmul(
            ledger, self.graph.n, count=1, note="schur graph"
        )
        return transition, order
