"""Result records shared by the engine and the public sampler facade.

:class:`SampleResult` lives here (rather than in
:mod:`repro.core.sampler`, which re-exports it) so the engine's runner and
ensemble layers can construct results without importing the facade --
keeping the engine -> core dependency one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.clique.cost import RoundLedger
from repro.graphs.spanning import TreeKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.phase import PhaseStats

__all__ = ["SampleResult"]


@dataclass
class SampleResult:
    """A sampled spanning tree plus full execution diagnostics."""

    tree: TreeKey
    rounds: int
    phases: int
    ledger: RoundLedger
    phase_stats: list["PhaseStats"] = field(default_factory=list)
    clique_stats: dict = field(default_factory=dict)
    # True when this draw was produced by the ensemble driver's
    # sequential-fallback path after the process pool broke (the tree and
    # ledger are identical either way -- the flag reports the *delivery*
    # degradation so services can surface it instead of masking it).
    degraded: bool = False

    def rounds_by_category(self) -> dict[str, int]:
        """Total rounds per ledger category, descending."""
        return self.ledger.rounds_by_category()

    def to_dict(self) -> dict:
        """JSON-serializable wire form (full diagnostics included)."""
        payload = {
            "tree": [[int(u), int(v)] for u, v in self.tree],
            "rounds": int(self.rounds),
            "phases": int(self.phases),
            "ledger": self.ledger.to_dict(),
            "phase_stats": [stats.to_dict() for stats in self.phase_stats],
            "clique_stats": {
                key: int(value) for key, value in self.clique_stats.items()
            },
        }
        # Keyed in only when set: the healthy wire form stays byte-stable
        # with pre-flag captures (goldens, cached envelopes).
        if self.degraded:
            payload["degraded"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro.core.phase import PhaseStats

        return cls(
            tree=tuple((int(u), int(v)) for u, v in payload["tree"]),
            rounds=int(payload["rounds"]),
            phases=int(payload["phases"]),
            ledger=RoundLedger.from_dict(payload["ledger"]),
            phase_stats=[
                PhaseStats.from_dict(stats)
                for stats in payload.get("phase_stats", [])
            ],
            clique_stats=dict(payload.get("clique_stats", {})),
            degraded=bool(payload.get("degraded", False)),
        )
