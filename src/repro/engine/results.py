"""Result records shared by the engine and the public sampler facade.

:class:`SampleResult` lives here (rather than in
:mod:`repro.core.sampler`, which re-exports it) so the engine's runner and
ensemble layers can construct results without importing the facade --
keeping the engine -> core dependency one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.clique.cost import RoundLedger
from repro.graphs.spanning import TreeKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.phase import PhaseStats

__all__ = ["SampleResult"]


@dataclass
class SampleResult:
    """A sampled spanning tree plus full execution diagnostics."""

    tree: TreeKey
    rounds: int
    phases: int
    ledger: RoundLedger
    phase_stats: list["PhaseStats"] = field(default_factory=list)
    clique_stats: dict = field(default_factory=dict)

    def rounds_by_category(self) -> dict[str, int]:
        """Total rounds per ledger category, descending."""
        return self.ledger.rounds_by_category()
