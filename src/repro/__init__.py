"""repro: Sublinear-Time Sampling of Spanning Trees in the Congested Clique.

A full reproduction of Pemmaraju, Roy & Sobel (PODC 2025,
arXiv:2411.13334): the first o(n)-round algorithm for sampling an
(approximately) uniform spanning tree in the CongestedClique model,
together with every substrate it relies on -- a message-level
CongestedClique simulator with round accounting, Schur-complement and
shortcut graphs, weighted-perfect-matching samplers, the load-balanced
doubling walk builder, and the classical sequential baselines.

Quick start::

    import numpy as np
    from repro import graphs, sample_spanning_tree

    g = graphs.random_regular_graph(32, 4, rng=np.random.default_rng(0))
    tree = sample_spanning_tree(g, rng=0)   # canonical edge tuple

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-claim-by-claim reproduction results.
"""

from repro import analysis, api, clique, engine, graphs, linalg, matching, walks
from repro.api import Session
from repro.core import (
    CongestedCliqueTreeSampler,
    ExactTreeSampler,
    FastCoverResult,
    SampleResult,
    SamplerConfig,
    sample_spanning_tree,
    sample_spanning_tree_exact,
    sample_tree_fast_cover,
)
from repro.errors import ReproError
from repro.graphs import WeightedGraph

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "api",
    "Session",
    "clique",
    "engine",
    "graphs",
    "linalg",
    "matching",
    "walks",
    "CongestedCliqueTreeSampler",
    "ExactTreeSampler",
    "FastCoverResult",
    "SampleResult",
    "SamplerConfig",
    "sample_spanning_tree",
    "sample_spanning_tree_exact",
    "sample_tree_fast_cover",
    "ReproError",
    "WeightedGraph",
    "__version__",
]
