"""Statistical analysis: empirical tree distributions and scaling fits.

- :mod:`repro.analysis.tv` -- empirical distributions over spanning trees,
  exact total variation distance against the uniform (Matrix-Tree) ground
  truth, and chi-square goodness-of-fit tests;
- :mod:`repro.analysis.stats` -- confidence intervals, scaling-exponent
  regression helpers shared by the benchmarks.
"""

from repro.analysis.ensemble import (
    edge_frequencies,
    ensemble_leverage_report,
    ensemble_summary,
    leverage_report_from_result,
    leverage_score_deviation,
)
from repro.analysis.stats import (
    bootstrap_mean_ci,
    geometric_mean,
    loglog_fit,
)
from repro.analysis.tv import (
    chi_square_uniformity,
    empirical_tree_distribution,
    expected_tv_noise,
    sample_tree_distribution,
    tv_distance,
    tv_to_uniform,
)

__all__ = [
    "edge_frequencies",
    "ensemble_leverage_report",
    "ensemble_summary",
    "leverage_report_from_result",
    "leverage_score_deviation",
    "bootstrap_mean_ci",
    "geometric_mean",
    "loglog_fit",
    "chi_square_uniformity",
    "empirical_tree_distribution",
    "expected_tv_noise",
    "sample_tree_distribution",
    "tv_distance",
    "tv_to_uniform",
]
