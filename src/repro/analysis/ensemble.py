"""Tree-ensemble statistics: edge marginals against leverage scores.

For validation beyond small-graph enumeration, uniform-spanning-tree
samplers are checked on their *edge marginals*: ``P(e in T) = w(e) *
R_eff(e)`` (the leverage score; see :mod:`repro.graphs.electrical`). These
helpers turn a batch of sampled trees into marginal estimates and summary
distances, and serve the sparsifier-style applications that consume tree
ensembles directly.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.graphs.core import WeightedGraph
from repro.graphs.electrical import edge_leverage_scores
from repro.graphs.spanning import TreeKey

__all__ = [
    "edge_frequencies",
    "leverage_score_deviation",
    "ensemble_summary",
    "ensemble_leverage_report",
    "leverage_report_from_result",
]


def edge_frequencies(
    trees: Iterable[TreeKey],
) -> dict[tuple[int, int], float]:
    """Fraction of sampled trees containing each edge."""
    trees = list(trees)
    if not trees:
        raise ReproError("no trees provided")
    counts: Counter = Counter()
    for tree in trees:
        for edge in tree:
            counts[edge] += 1
    return {edge: count / len(trees) for edge, count in counts.items()}


def leverage_score_deviation(
    graph: WeightedGraph, trees: Iterable[TreeKey]
) -> dict[str, float]:
    """Compare empirical edge marginals to the exact leverage scores.

    Returns max and mean absolute deviation plus the sampling-noise scale
    ``sqrt(p (1 - p) / k)`` maximized over edges, so callers can tell
    sampler bias from noise.
    """
    trees = list(trees)
    frequencies = edge_frequencies(trees)
    leverage = edge_leverage_scores(graph)
    deviations = []
    noise_scales = []
    for edge, score in leverage.items():
        deviations.append(abs(frequencies.get(edge, 0.0) - score))
        noise_scales.append(
            np.sqrt(max(score * (1.0 - score), 1e-12) / len(trees))
        )
    return {
        "max_abs_deviation": float(max(deviations)),
        "mean_abs_deviation": float(np.mean(deviations)),
        "max_noise_scale": float(max(noise_scales)),
        "num_trees": float(len(trees)),
    }


def ensemble_leverage_report(
    graph: WeightedGraph,
    count: int,
    *,
    config=None,
    variant: str = "approximate",
    seed=None,
    jobs: int | None = None,
) -> dict[str, float]:
    """Draw ``count`` trees through the engine and audit their marginals.

    Backed by :func:`repro.engine.ensemble.sample_tree_ensemble` (spawned
    per-draw seeds, optional multi-process fan-out, warm derived-graph
    cache), then compared against the exact leverage scores. Returns the
    :func:`leverage_score_deviation` statistics extended with throughput
    fields (``seconds``, ``trees_per_second``, ``jobs``,
    ``mean_rounds``).
    """
    from repro.engine.ensemble import sample_tree_ensemble

    result = sample_tree_ensemble(
        graph, count, config=config, variant=variant, seed=seed, jobs=jobs
    )
    return leverage_report_from_result(graph, result)


def leverage_report_from_result(graph: WeightedGraph, result) -> dict[str, float]:
    """Leverage-marginal audit of an already-drawn ensemble.

    Takes a :class:`~repro.engine.ensemble.EnsembleResult` so callers
    that already hold a batch (the session API, benchmarks) never pay for
    a second round of sampling just to audit it.
    """
    stats = leverage_score_deviation(graph, result.trees)
    stats.update(
        {
            "seconds": float(result.seconds),
            "trees_per_second": float(result.trees_per_second()),
            "jobs": float(result.jobs),
            "mean_rounds": float(result.mean_rounds()),
        }
    )
    return stats


def ensemble_summary(
    graph: WeightedGraph, trees: Iterable[TreeKey]
) -> str:
    """One-line human summary used by examples and benches."""
    stats = leverage_score_deviation(graph, trees)
    return (
        f"{int(stats['num_trees'])} trees: edge-marginal deviation "
        f"max {stats['max_abs_deviation']:.4f} / mean "
        f"{stats['mean_abs_deviation']:.4f} "
        f"(noise scale {stats['max_noise_scale']:.4f})"
    )
