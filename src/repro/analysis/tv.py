"""Total variation distance and uniformity testing over spanning trees.

The paper's correctness statements (Lemma 4, Lemma 6, Lemma 9) are all of
the form "the output distribution is within eps of uniform in total
variation". Ground truth comes from exact enumeration
(:func:`repro.graphs.spanning.uniform_tree_distribution`); these helpers
turn sampler draws into empirical distributions and distances.

A note on noise: with ``k`` samples over ``T`` equiprobable trees the
*expected* empirical TV of a perfect sampler is roughly
``sqrt(T / (2 pi k))`` -- :func:`expected_tv_noise` computes this so tests
and benches can set thresholds that separate sampler bias from sampling
noise.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Mapping

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ReproError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, uniform_tree_distribution

__all__ = [
    "empirical_tree_distribution",
    "tv_distance",
    "tv_to_uniform",
    "expected_tv_noise",
    "chi_square_uniformity",
    "sample_tree_distribution",
]


def empirical_tree_distribution(
    trees: Iterable[TreeKey],
) -> dict[TreeKey, float]:
    """Normalized frequency table of sampled trees."""
    counts = Counter(trees)
    total = sum(counts.values())
    if total == 0:
        raise ReproError("no samples provided")
    return {tree: count / total for tree, count in counts.items()}


def tv_distance(
    p: Mapping[TreeKey, float], q: Mapping[TreeKey, float]
) -> float:
    """Total variation distance ``0.5 * sum |p - q|`` over the union support."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(t, 0.0) - q.get(t, 0.0)) for t in support)


def tv_to_uniform(
    graph: WeightedGraph, trees: Iterable[TreeKey]
) -> float:
    """Empirical TV distance of sampled trees from the exact target law."""
    target = uniform_tree_distribution(graph)
    empirical = empirical_tree_distribution(trees)
    unknown = set(empirical) - set(target)
    if unknown:
        raise ReproError(
            f"samples contain {len(unknown)} non-spanning-tree keys; "
            "sampler output is invalid"
        )
    return tv_distance(empirical, dict(target))


def expected_tv_noise(num_trees: int, num_samples: int) -> float:
    """Approximate expected empirical TV of a *perfect* sampler.

    For a uniform law over ``T`` outcomes and ``k`` i.i.d. samples, each
    |empirical - 1/T| has mean ~ sqrt(1 / (T k) * (1 - 1/T)) * sqrt(2/pi);
    summing T of them and halving gives ~ sqrt(T / (2 pi k)). Used to set
    test thresholds (typically 3x this value).
    """
    if num_trees < 1 or num_samples < 1:
        raise ReproError("need positive tree and sample counts")
    return math.sqrt(num_trees / (2.0 * math.pi * num_samples))


def chi_square_uniformity(
    graph: WeightedGraph, trees: Iterable[TreeKey]
) -> tuple[float, float]:
    """Chi-square goodness-of-fit of samples against the exact tree law.

    Returns ``(statistic, p_value)``. A *correct* sampler produces
    p-values uniform on [0, 1]; systematic bias drives them to 0.
    """
    target = uniform_tree_distribution(graph)
    counts = Counter(trees)
    total = sum(counts.values())
    if total == 0:
        raise ReproError("no samples provided")
    support = list(target)
    observed = np.array([counts.get(t, 0) for t in support], dtype=np.float64)
    expected = np.array([target[t] * total for t in support])
    statistic, p_value = scipy_stats.chisquare(observed, expected)
    return float(statistic), float(p_value)


def sample_tree_distribution(
    sampler: Callable[[np.random.Generator], TreeKey],
    num_samples: int,
    rng: np.random.Generator | int | None = None,
) -> list[TreeKey]:
    """Draw ``num_samples`` trees from a sampler callable."""
    rng = np.random.default_rng(rng)
    return [sampler(rng) for _ in range(num_samples)]
