"""Small statistics helpers shared by tests and benchmarks."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["loglog_fit", "bootstrap_mean_ci", "geometric_mean"]


def loglog_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``log y = exponent * log x + log c``.

    Returns ``(exponent, c)``. The scaling benchmarks compare the fitted
    exponent with the paper's claimed one (e.g. 0.5 + alpha for Theorem
    1); constants are meaningless across different simulators.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ReproError("need at least two points for a fit")
    log_x = np.log(np.asarray(xs, dtype=np.float64))
    log_y = np.log(np.clip(np.asarray(ys, dtype=np.float64), 1e-300, None))
    exponent, intercept = np.polyfit(log_x, log_y, 1)
    return float(exponent), float(math.exp(intercept))


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float, float]:
    """Bootstrap confidence interval for the mean: (mean, low, high)."""
    if not values:
        raise ReproError("need at least one value")
    rng = np.random.default_rng(rng)
    data = np.asarray(values, dtype=np.float64)
    means = np.array([
        data[rng.integers(0, len(data), len(data))].mean()
        for _ in range(resamples)
    ])
    tail = (1.0 - confidence) / 2.0
    return (
        float(data.mean()),
        float(np.quantile(means, tail)),
        float(np.quantile(means, 1.0 - tail)),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ReproError("need at least one value")
    data = np.asarray(values, dtype=np.float64)
    if np.any(data <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.log(data).mean()))
