"""Declarative request dataclasses for the session API.

A request is a frozen, JSON-serializable description of one unit of work
against a :class:`~repro.api.session.Session`-held graph: what to run
(sample / ensemble / audit / round bill / pagerank) and with which
algorithm parameters. The graph itself and the heavyweight machinery
(derived-graph cache, matmul backend, RNG lineage) live on the session;
requests stay cheap to build, ship over a wire, and log.

``seed=None`` (the default) asks the session to derive the seed from its
own reproducible RNG lineage; an explicit integer pins the request's
randomness independently of session history, which is what services
replaying requests want. Likewise ``variant=None`` defers to the
session's default variant (set by its preset -- ``"paper-exact"``
sessions run the exact sampler unless a request overrides it).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.core.variants import ensemble_variant_names, sample_variant_names
from repro.core.workloads import get_workload
from repro.errors import ConfigError

__all__ = [
    "SampleRequest",
    "EnsembleRequest",
    "AuditRequest",
    "RoundBillRequest",
    "PageRankRequest",
    "MSTRequest",
    "request_from_dict",
    "REQUEST_TYPES",
]


class _RequestBase:
    """Shared wire format: ``{"request": <tag>, ...fields}``."""

    kind: ClassVar[str]

    def to_dict(self) -> dict:
        """JSON-serializable wire form, tagged with the request kind."""
        return {"request": self.kind, **asdict(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "_RequestBase":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys are rejected rather than dropped: a misspelled or
        stale field in a replayed request must fail loudly at the wire
        boundary, not run a default-valued workload.
        """
        allowed = {f.name for f in fields(cls)}
        unknown = set(payload) - allowed - {"request"}
        if unknown:
            raise ConfigError(
                f"unknown field(s) {sorted(unknown)} for "
                f"{cls.kind!r} request; allowed: {sorted(allowed)}"
            )
        return cls(**{k: v for k, v in payload.items() if k in allowed})


@dataclass(frozen=True)
class SampleRequest(_RequestBase):
    """Draw one spanning tree.

    ``variant`` selects the Theorem 1 approximate sampler, the Appendix 5
    exact sampler, or the Corollary 1 fast-cover sampler.
    """

    kind: ClassVar[str] = "sample"

    variant: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        allowed = sample_variant_names()
        if self.variant is not None and self.variant not in allowed:
            raise ConfigError(
                f"unknown sample variant {self.variant!r}; "
                f"choose from {allowed}"
            )


@dataclass(frozen=True)
class EnsembleRequest(_RequestBase):
    """Draw a batch of independent trees (optionally across processes).

    ``jobs=None`` uses all CPUs; results never depend on the jobs count
    (each draw is keyed to its own spawned seed). ``leverage_audit``
    additionally compares the batch's empirical edge marginals to the
    exact leverage scores and attaches the statistics to the response
    metadata.
    """

    kind: ClassVar[str] = "ensemble"

    count: int = 100
    variant: str | None = None
    seed: int | None = None
    jobs: int | None = None
    leverage_audit: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"count must be >= 1, got {self.count}")
        allowed = ensemble_variant_names()
        if self.variant is not None and self.variant not in allowed:
            raise ConfigError(
                f"unknown ensemble variant {self.variant!r}; "
                f"choose from {allowed}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")


@dataclass(frozen=True)
class AuditRequest(_RequestBase):
    """Uniformity audit against exact spanning-tree enumeration.

    Refuses graphs whose spanning-tree count exceeds
    ``max_enumeration`` (exact enumeration would be intractable).
    """

    kind: ClassVar[str] = "audit"

    samples: int = 500
    variant: str | None = None
    seed: int | None = None
    jobs: int = 1
    max_enumeration: float = 100_000.0

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ConfigError(f"samples must be >= 1, got {self.samples}")
        allowed = ensemble_variant_names()
        if self.variant is not None and self.variant not in allowed:
            raise ConfigError(
                f"unknown audit variant {self.variant!r}; "
                f"choose from {allowed}"
            )
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")


@dataclass(frozen=True)
class RoundBillRequest(_RequestBase):
    """Run all three samplers once and compare their round bills."""

    kind: ClassVar[str] = "roundbill"

    seed: int | None = None


@dataclass(frozen=True)
class PageRankRequest(_RequestBase):
    """Walk-based PageRank estimate vs the exact solve."""

    kind: ClassVar[str] = "pagerank"

    damping: float = 0.85
    walks_per_vertex: int = 64
    seed: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise ConfigError(
                f"damping must be in (0, 1), got {self.damping}"
            )
        if self.walks_per_vertex < 1:
            raise ConfigError(
                f"walks_per_vertex must be >= 1, got {self.walks_per_vertex}"
            )


@dataclass(frozen=True)
class MSTRequest(_RequestBase):
    """Minimum spanning forest over seeded random edge weights.

    ``recipe`` picks the round model to bill under -- any recipe
    registered on the ``"mst"`` workload spec (``None`` defers to the
    workload default). ``weights`` picks the instance family:
    ``"random"`` (i.i.d. uniform, unique MSF), ``"tie-prone"``
    (quantized draws forcing weight ties), or ``"graph"`` (the graph's
    own weights). Every result is gated against the sequential Kruskal
    oracle before it is returned.
    """

    kind: ClassVar[str] = "mst"

    recipe: str | None = None
    weights: str = "random"
    seed: int | None = None

    def __post_init__(self) -> None:
        spec = get_workload("mst")
        if self.recipe is not None and self.recipe not in spec.recipe_names():
            raise ConfigError(
                f"unknown mst recipe {self.recipe!r}; "
                f"choose from {spec.recipe_names()}"
            )
        if self.weights not in spec.weight_modes:
            raise ConfigError(
                f"unknown weight mode {self.weights!r}; "
                f"choose from {spec.weight_modes}"
            )


REQUEST_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        SampleRequest,
        EnsembleRequest,
        AuditRequest,
        RoundBillRequest,
        PageRankRequest,
        MSTRequest,
    )
}


def request_from_dict(payload: dict) -> _RequestBase:
    """Rebuild any request from its tagged wire form."""
    try:
        cls = REQUEST_TYPES[payload["request"]]
    except KeyError:
        raise ConfigError(
            f"unknown request tag {payload.get('request')!r}; "
            f"choose from {sorted(REQUEST_TYPES)}"
        ) from None
    return cls.from_dict(payload)
