"""Named configuration presets: one source for the recurring recipes.

Benchmarks, examples, and the CLI used to copy-paste the same
:class:`~repro.core.config.SamplerConfig` incantations (the paper's
nominal parameters; the demo-friendly shortened walk lengths). Each
recipe now lives here once, keyed by name, so a session can be opened as
``Session(graph, "fast-bench")`` and a benchmark tweak propagates
everywhere at once.

- ``"paper-approximate"`` -- Theorem 1 defaults: ``rho = floor(sqrt(n))``,
  the paper's nominal ``ell = Theta~(n^3)`` walk length.
- ``"paper-exact"`` -- Appendix 5 defaults: ``rho = floor(n^(1/3))``,
  per-pair multiset placement, zero distributional error.
- ``"paper-broadcast"`` -- the Anari-Haqi Broadcast Congested Clique
  sampler: one full-cover phase, rounds billed to the
  broadcast-bandwidth category (a different bandwidth regime from the
  unicast presets).
- ``"fast-bench"`` -- the demo/benchmark recipe: ``ell = 2^12`` (the
  Appendix 5.1 Las-Vegas extension keeps the output law exact).
- ``"fast-audit"`` -- the statistical-audit recipe: ``ell = 2^10`` for
  high-volume small-graph ensembles.
- ``"sparse-scale"`` -- the large-sparse-instance recipe: the fast-bench
  walk length with the scipy CSR numerics backend pinned on
  (``linalg_backend="sparse"``), for cycle/grid/bounded-degree inputs
  past the dense crossover (see ``benchmarks/bench_sparse_scaling.py``).
- ``"warm-service"`` -- the long-lived-service recipe: fast-bench walk
  length over the persistent tiered derived-graph store
  (``cache_dir="auto"`` -> ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-spanning-trees``) with a 256 MiB RAM tier and a
  4 GiB disk tier, so restarts and ensemble workers warm-start and the
  ``auto`` backend picks up this machine's calibrated sparse crossover
  (``python -m repro calibrate``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import SamplerConfig
from repro.core.variants import get_variant
from repro.errors import ConfigError

__all__ = ["Preset", "PRESETS", "get_preset", "preset_config", "resolve_config"]


@dataclass(frozen=True)
class Preset:
    """A named recipe: sampler variant + configuration + rationale."""

    name: str
    description: str
    variant: str
    config: SamplerConfig

    def __post_init__(self) -> None:
        # A preset naming an unregistered variant would surface only on
        # first dispatch; fail at definition/deserialization time instead.
        get_variant(self.variant)


PRESETS: dict[str, Preset] = {
    preset.name: preset
    for preset in [
        Preset(
            "paper-approximate",
            "Theorem 1 as published: nominal ell, rho = floor(sqrt(n))",
            "approximate",
            SamplerConfig(),
        ),
        Preset(
            "paper-exact",
            "Appendix 5 as published: exact placement, rho = floor(n^(1/3))",
            "exact",
            SamplerConfig(),
        ),
        Preset(
            "paper-broadcast",
            "Anari-Haqi Broadcast CC sampler: one full-cover phase, "
            "polylog broadcast rounds",
            "broadcast",
            SamplerConfig(),
        ),
        Preset(
            "fast-bench",
            "demo/benchmark recipe: ell = 2^12 with Las-Vegas extension",
            "approximate",
            SamplerConfig(ell=1 << 12),
        ),
        Preset(
            "fast-audit",
            "statistical-audit recipe: ell = 2^10 for high-volume ensembles",
            "approximate",
            SamplerConfig(ell=1 << 10),
        ),
        Preset(
            "sparse-scale",
            "large sparse instances: fast-bench walk length + CSR numerics",
            "approximate",
            SamplerConfig(ell=1 << 12, linalg_backend="sparse"),
        ),
        Preset(
            "warm-service",
            "long-lived service: persistent tiered cache + calibrated auto "
            "backend",
            "approximate",
            SamplerConfig(
                ell=1 << 12,
                cache_dir="auto",
                cache_memory_bytes=256 * 2**20,
                cache_disk_bytes=4 * 2**30,
            ),
        ),
    ]
}


def get_preset(name: str) -> Preset:
    """Look up a preset; raises :class:`ConfigError` on unknown names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def preset_config(name: str, **overrides) -> SamplerConfig:
    """A preset's config with field overrides applied.

    ``preset_config("fast-bench", ell=1 << 10)`` is the supported way to
    vary one knob without restating the whole recipe.
    """
    return replace(get_preset(name).config, **overrides)


def resolve_config(config: SamplerConfig | str | None) -> SamplerConfig:
    """Normalize a config argument: instance, preset name, or None."""
    if config is None:
        return SamplerConfig()
    if isinstance(config, str):
        return get_preset(config).config
    return config
