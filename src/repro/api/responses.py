"""The uniform response envelope and wire-level report payloads.

Every :meth:`~repro.api.session.Session.run` call returns a
:class:`Response`: the request kind, a typed result payload, and a
JSON-able ``meta`` dict (graph identity, seeds, timings, family
adjustments). ``Response.to_dict()`` / :func:`response_from_dict` give a
lossless JSON round trip for every payload type -- the engine's
:class:`~repro.engine.results.SampleResult` and
:class:`~repro.engine.ensemble.EnsembleResult` (which in turn serialize
their :class:`~repro.clique.cost.RoundLedger` and
:class:`~repro.core.phase.PhaseStats`), plus the flat report dataclasses
defined here for workloads whose native results hold non-wire-safe
internals (fast-cover's doubling walks, PageRank's ndarray scores).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

from repro.engine.ensemble import EnsembleResult
from repro.engine.results import SampleResult
from repro.errors import ConfigError

__all__ = [
    "Response",
    "AuditReport",
    "RoundBillReport",
    "FastCoverReport",
    "PageRankReport",
    "RESULT_TYPES",
    "response_from_dict",
]


class _ReportBase:
    """Flat JSON-able report payloads (plain dataclass fields only)."""

    def to_dict(self) -> dict:
        """JSON-serializable wire form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "_ReportBase":
        """Rebuild a report from :meth:`to_dict` output."""
        allowed = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in allowed})


@dataclass(frozen=True)
class AuditReport(_ReportBase):
    """Uniformity-audit verdict against exact enumeration."""

    spanning_trees: int
    samples: int
    tv_to_uniform: float
    chi_square_p: float
    noise_floor: float
    verdict: str
    mean_rounds: float


@dataclass(frozen=True)
class RoundBillReport(_ReportBase):
    """Round bills of the three samplers on one graph, side by side."""

    approximate_rounds: int
    approximate_phases: int
    exact_rounds: int
    exact_phases: int
    fastcover_rounds: int
    fastcover_walk_length: int


@dataclass(frozen=True)
class FastCoverReport(_ReportBase):
    """Wire form of a Corollary 1 fast-cover draw.

    The native :class:`~repro.core.fastcover.FastCoverResult` carries the
    full doubling walks (O(n * walk-length) ints); this report keeps the
    tree and the diagnostics a service actually returns.
    """

    tree: list = field(default_factory=list)
    rounds: int = 0
    walk_length: int = 0
    cover_time_estimate: float = 0.0
    doubling_rounds: int = 0

    @classmethod
    def from_result(cls, result) -> "FastCoverReport":
        """Build the wire report from a native FastCoverResult."""
        return cls(
            tree=[[int(u), int(v)] for u, v in result.tree],
            rounds=int(result.rounds),
            walk_length=int(result.walk_length),
            cover_time_estimate=float(result.cover_time_estimate),
            doubling_rounds=int(result.doubling.rounds),
        )


@dataclass(frozen=True)
class PageRankReport(_ReportBase):
    """Walk-estimated PageRank scores and their error vs the exact solve."""

    damping: float
    walks_per_vertex: int
    walk_length: int
    rounds: int
    l1_error: float
    scores: list = field(default_factory=list)
    exact_scores: list = field(default_factory=list)


RESULT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SampleResult,
        EnsembleResult,
        AuditReport,
        RoundBillReport,
        FastCoverReport,
        PageRankReport,
    )
}


@dataclass(frozen=True)
class Response:
    """The uniform envelope every session call returns.

    Attributes
    ----------
    kind:
        The request kind that produced this response (``"sample"``,
        ``"ensemble"``, ``"audit"``, ``"roundbill"``, ``"pagerank"``).
    result:
        The typed payload -- one of :data:`RESULT_TYPES`.
    meta:
        JSON-able context: graph size, family adjustment, the seed
        lineage, wall-clock seconds, optional analysis attachments.
    """

    kind: str
    result: object
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable wire form, tagged with the payload type."""
        return {
            "kind": self.kind,
            "result_type": type(self.result).__name__,
            "result": self.result.to_dict(),
            "meta": self.meta,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The envelope as a JSON string (the CLI's ``--json`` output)."""
        return json.dumps(self.to_dict(), indent=indent)


def response_from_dict(payload: dict) -> Response:
    """Rebuild a :class:`Response` (typed payload included) from JSON."""
    try:
        result_cls = RESULT_TYPES[payload["result_type"]]
    except KeyError:
        raise ConfigError(
            f"unknown result type {payload.get('result_type')!r}; "
            f"choose from {sorted(RESULT_TYPES)}"
        ) from None
    return Response(
        kind=payload["kind"],
        result=result_cls.from_dict(payload["result"]),
        meta=dict(payload.get("meta", {})),
    )
