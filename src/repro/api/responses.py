"""The uniform response envelope and wire-level report payloads.

Every :meth:`~repro.api.session.Session.run` call returns a
:class:`Response`: the request kind, a typed result payload, and a
JSON-able ``meta`` dict (graph identity, seeds, timings, family
adjustments). ``Response.to_dict()`` / :func:`response_from_dict` give a
lossless JSON round trip for every payload type -- the engine's
:class:`~repro.engine.results.SampleResult` and
:class:`~repro.engine.ensemble.EnsembleResult` (which in turn serialize
their :class:`~repro.clique.cost.RoundLedger` and
:class:`~repro.core.phase.PhaseStats`), plus the flat report dataclasses
defined here for workloads whose native results hold non-wire-safe
internals (fast-cover's doubling walks, PageRank's ndarray scores).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

from repro.engine.ensemble import EnsembleResult
from repro.engine.results import SampleResult
from repro.errors import ConfigError

__all__ = [
    "Response",
    "AuditReport",
    "RoundBillReport",
    "FastCoverReport",
    "PageRankReport",
    "MSTReport",
    "RESULT_TYPES",
    "response_from_dict",
    "sanitize_nonfinite",
    "restore_nonfinite",
]

# RFC 8259 has no NaN/Infinity tokens, but stats over degenerate
# ensembles (a TV estimate on zero draws, a chi-square on a single tree
# class) legitimately produce non-finite floats. The wire form carries
# them as these string sentinels; ``response_from_dict`` restores them.
# Genuine string values that *look* like a sentinel are escaped with a
# leading backslash on the way out and unescaped on the way back, so
# the round trip is lossless for every payload.
_NONFINITE_TO_WIRE = {"nan": "NaN", "inf": "Infinity", "-inf": "-Infinity"}
_WIRE_TO_NONFINITE = {
    "NaN": float("nan"),
    "Infinity": float("inf"),
    "-Infinity": float("-inf"),
}


def _sentinel_like(text: str) -> bool:
    """True for sentinels and their backslash-escaped forms."""
    return text.lstrip("\\") in _WIRE_TO_NONFINITE


def sanitize_nonfinite(value):
    """Recursively replace non-finite floats with string sentinels.

    Returns a structure :func:`json.dumps` accepts with
    ``allow_nan=False`` (i.e. strictly RFC 8259): ``nan`` becomes
    ``"NaN"``, the infinities become ``"Infinity"`` / ``"-Infinity"``.
    Pre-existing strings that collide with a sentinel (or an escaped
    sentinel) gain one leading backslash so :func:`restore_nonfinite`
    can tell them apart. Everything else passes through unchanged.
    """
    if isinstance(value, float):
        if value != value:  # NaN is the only value unequal to itself
            return _NONFINITE_TO_WIRE["nan"]
        if value == float("inf"):
            return _NONFINITE_TO_WIRE["inf"]
        if value == float("-inf"):
            return _NONFINITE_TO_WIRE["-inf"]
        return value
    if isinstance(value, str):
        return "\\" + value if _sentinel_like(value) else value
    if isinstance(value, dict):
        return {key: sanitize_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nonfinite(item) for item in value]
    return value


def restore_nonfinite(value):
    """Inverse of :func:`sanitize_nonfinite`: sentinels back to floats.

    Bare sentinels become their float values; escaped sentinels shed
    exactly one backslash (restoring the original string).
    """
    if isinstance(value, str):
        if value in _WIRE_TO_NONFINITE:
            return _WIRE_TO_NONFINITE[value]
        if value.startswith("\\") and _sentinel_like(value):
            return value[1:]
        return value
    if isinstance(value, dict):
        return {key: restore_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [restore_nonfinite(item) for item in value]
    return value


class _ReportBase:
    """Flat JSON-able report payloads (plain dataclass fields only)."""

    def to_dict(self) -> dict:
        """JSON-serializable wire form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "_ReportBase":
        """Rebuild a report from :meth:`to_dict` output."""
        allowed = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in allowed})


@dataclass(frozen=True)
class AuditReport(_ReportBase):
    """Uniformity-audit verdict against exact enumeration."""

    spanning_trees: int
    samples: int
    tv_to_uniform: float
    chi_square_p: float
    noise_floor: float
    verdict: str
    mean_rounds: float


@dataclass(frozen=True)
class RoundBillReport(_ReportBase):
    """Round bills of the registered samplers on one graph, side by side.

    The broadcast fields default to 0 so pre-registry wire documents
    (which never carried them) still deserialize; ``from_dict`` filters
    to known fields, so newer documents remain readable by older code.
    Note the broadcast figures are *Broadcast Congested Clique* rounds
    -- a different bandwidth regime from the unicast columns, reported
    side by side but never summed.
    """

    approximate_rounds: int
    approximate_phases: int
    exact_rounds: int
    exact_phases: int
    fastcover_rounds: int
    fastcover_walk_length: int
    broadcast_rounds: int = 0
    broadcast_phases: int = 0


@dataclass(frozen=True)
class FastCoverReport(_ReportBase):
    """Wire form of a Corollary 1 fast-cover draw.

    The native :class:`~repro.core.fastcover.FastCoverResult` carries the
    full doubling walks (O(n * walk-length) ints); this report keeps the
    tree and the diagnostics a service actually returns.
    """

    tree: list = field(default_factory=list)
    rounds: int = 0
    walk_length: int = 0
    cover_time_estimate: float = 0.0
    doubling_rounds: int = 0

    @classmethod
    def from_result(cls, result) -> "FastCoverReport":
        """Build the wire report from a native FastCoverResult."""
        return cls(
            tree=[[int(u), int(v)] for u, v in result.tree],
            rounds=int(result.rounds),
            walk_length=int(result.walk_length),
            cover_time_estimate=float(result.cover_time_estimate),
            doubling_rounds=int(result.doubling.rounds),
        )


@dataclass(frozen=True)
class PageRankReport(_ReportBase):
    """Walk-estimated PageRank scores and their error vs the exact solve."""

    damping: float
    walks_per_vertex: int
    walk_length: int
    rounds: int
    l1_error: float
    scores: list = field(default_factory=list)
    exact_scores: list = field(default_factory=list)


@dataclass(frozen=True)
class MSTReport(_ReportBase):
    """One oracle-gated minimum spanning forest.

    ``forest`` is the canonical edge list (``(min, max)``-normalized,
    sorted), ``total_weight`` the canonical total (weights summed in
    ascending edge-index order, so equal forests report byte-equal
    floats). ``oracle_weight`` / ``oracle_match`` record the sequential
    Kruskal cross-validation the session performed before returning:
    a report only exists because the gate passed, but the fields keep
    the verdict auditable on the wire.
    """

    forest: list = field(default_factory=list)
    total_weight: float = 0.0
    recipe: str = ""
    weights: str = "random"
    phases: int = 0
    rounds: int = 0
    categories: dict = field(default_factory=dict)
    oracle: str = "kruskal"
    oracle_weight: float = 0.0
    oracle_match: bool = False

    def rounds_by_category(self) -> dict:
        """Ledger-style category totals (mirrors engine results)."""
        return dict(self.categories)


RESULT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SampleResult,
        EnsembleResult,
        AuditReport,
        RoundBillReport,
        FastCoverReport,
        PageRankReport,
        MSTReport,
    )
}


@dataclass(frozen=True)
class Response:
    """The uniform envelope every session call returns.

    Attributes
    ----------
    kind:
        The request kind that produced this response (``"sample"``,
        ``"ensemble"``, ``"audit"``, ``"roundbill"``, ``"pagerank"``).
    result:
        The typed payload -- one of :data:`RESULT_TYPES`.
    meta:
        JSON-able context: graph size, family adjustment, the seed
        lineage, wall-clock seconds, optional analysis attachments.
    """

    kind: str
    result: object
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable wire form, tagged with the payload type.

        The wire form is always *sanitized*: non-finite floats appear as
        their string sentinels and colliding genuine strings are
        escaped (see :func:`sanitize_nonfinite`), so the output is safe
        for strict RFC 8259 emitters and :func:`response_from_dict` can
        restore it losslessly whether it traveled through JSON text or
        stayed an in-memory dict.
        """
        return sanitize_nonfinite(
            {
                "kind": self.kind,
                "result_type": type(self.result).__name__,
                "result": self.result.to_dict(),
                "meta": self.meta,
            }
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """The envelope as a JSON string (the CLI's ``--json`` output).

        Strictly RFC 8259: serialization runs with ``allow_nan=False``;
        :meth:`to_dict` already carries any non-finite float (a TV
        estimate on a degenerate ensemble, say) as its string sentinel
        (``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``) rather than the
        non-standard bare tokens Python's default emitter would produce.
        :func:`response_from_dict` maps the sentinels back to floats.
        """
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)


def response_from_dict(payload: dict) -> Response:
    """Rebuild a :class:`Response` (typed payload included) from JSON.

    Accepts both in-memory :meth:`Response.to_dict` output and parsed
    :meth:`Response.to_json` wire documents -- the two are identical
    sanitized structures, so the non-finite string sentinels are
    restored to their float values (and escaped lookalike strings
    unescaped) before the typed payload is rebuilt.
    """
    try:
        result_cls = RESULT_TYPES[payload["result_type"]]
    except KeyError:
        raise ConfigError(
            f"unknown result type {payload.get('result_type')!r}; "
            f"choose from {sorted(RESULT_TYPES)}"
        ) from None
    return Response(
        kind=payload["kind"],
        result=result_cls.from_dict(restore_nonfinite(payload["result"])),
        meta=dict(restore_nonfinite(payload.get("meta", {}))),
    )
