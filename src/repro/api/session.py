"""The long-lived session: one graph, one cache, one RNG lineage.

:class:`Session` is the single entry point the ROADMAP's service story
programs against. It binds a graph to the heavyweight state every call
wants to share -- the engine-layer
:class:`~repro.engine.cache.DerivedGraphCache` (warm across draws *and*
across sampler variants, since derived graphs are variant-independent),
one :class:`~repro.engine.runner.SamplerEngine` per variant, and a
reproducible RNG lineage (a master :class:`numpy.random.SeedSequence`
that spawns one child per seedless request) -- and executes declarative
:mod:`~repro.api.requests` against it, returning a uniform
:class:`~repro.api.responses.Response` envelope.

Mirroring the paper's own architecture, the session is an *interface*
the workloads program against, not a code path: the same request runs
unchanged over either matmul backend, with or without the cache, single-
or multi-process -- exactly as the Pemmaraju-Roy-Sobel algorithm treats
matrix multiplication as a pluggable black box.

Typical use::

    from repro import graphs
    from repro.api import EnsembleRequest, SampleRequest, Session

    session = Session(graphs.cycle_graph(8), "fast-bench", seed=7)
    response = session.run(SampleRequest(variant="exact"))
    print(response.result.tree, response.meta["seconds"])

    for result in session.stream(EnsembleRequest(count=200, seed=3)):
        consume(result)   # arrives as worker processes finish
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.presets import get_preset, resolve_config
from repro.api.requests import (
    AuditRequest,
    EnsembleRequest,
    MSTRequest,
    PageRankRequest,
    RoundBillRequest,
    SampleRequest,
)
from repro.api.responses import (
    AuditReport,
    FastCoverReport,
    MSTReport,
    PageRankReport,
    Response,
    RoundBillReport,
)
from repro.core.config import SamplerConfig
from repro.core.workloads import streaming_request_kinds
from repro.engine.ensemble import EnsembleEngine
from repro.engine.store import open_phase_store
from repro.engine.runner import SamplerEngine
from repro.errors import ConfigError, ReproError
from repro.graphs.core import WeightedGraph
from repro.linalg.backend import resolve_linalg_backend

__all__ = ["Session"]


class Session:
    """Executes requests against one graph with shared state across calls.

    Parameters
    ----------
    graph:
        Connected input graph; validated on first engine construction.
    config:
        A :class:`~repro.core.config.SamplerConfig`, a preset name
        (see :mod:`repro.api.presets`), or ``None`` for paper defaults.
    seed:
        Root of the session's RNG lineage. Requests with ``seed=None``
        consume successive children of this root (reproducible given the
        session's request order); requests with an explicit seed are
        independent of session history.
    meta:
        Extra JSON-able context merged into every response's ``meta``
        (e.g. the CLI records the graph family here).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        config: SamplerConfig | str | None = None,
        *,
        seed: int | None = None,
        meta: dict | None = None,
    ) -> None:
        self.graph = graph
        if isinstance(config, str):
            # A preset names a variant too: "paper-exact" sessions run
            # the exact sampler for requests that don't pin one.
            preset = get_preset(config)
            self.config = preset.config
            self.default_variant = preset.variant
        else:
            self.config = resolve_config(config)
            self.default_variant = "approximate"
        self.meta = dict(meta or {})
        # The numerics realization is resolved once per session (the
        # "auto" choice depends only on config + graph) and surfaced in
        # every response's meta so --json consumers can see which
        # backend produced their numbers.
        self._linalg_name = resolve_linalg_backend(self.config, graph).name
        self._root = np.random.SeedSequence(seed)
        # One store for the whole session: shared across variants (the
        # derived graphs are variant-independent) and -- when the config
        # names a cache_dir -- tiered over a persistent disk directory
        # that ensemble worker processes and later sessions warm-start
        # from (see repro.engine.store).
        self._cache = open_phase_store(self.config)
        self._engines: dict[str, SamplerEngine] = {}

    # -- shared state ---------------------------------------------------

    def engine(self, variant: str | None = None) -> SamplerEngine:
        """The session's engine for ``variant`` (built once, cache shared).

        ``None`` means the session's default variant (set by its preset).
        The derived-graph cache is keyed by (graph, numerics config), not
        by variant, so the approximate and exact engines warm each other.
        """
        if variant is None:
            variant = self.default_variant
        if variant not in self._engines:
            self._engines[variant] = SamplerEngine(
                self.graph, self.config, variant=variant, cache=self._cache
            )
        return self._engines[variant]

    def cache_stats(self) -> dict:
        """Per-tier counters of the shared derived-graph cache.

        Flat int-valued dict: ``hits``/``misses``/``evictions``/
        ``entries``/``bytes`` for the memory tier, plus ``disk_hits``/
        ``spills``/``promotes``/``disk_entries``/``disk_bytes``/
        ``disk_evictions`` when the session runs a tiered store
        (``config.cache_dir``). Empty when caching is disabled. Requests
        fanned out to worker processes (``jobs > 1``) warm the shared
        disk tier but not this session's in-process counters.
        """
        return {} if self._cache is None else self._cache.stats()

    def _request_seed(self, request) -> np.random.SeedSequence:
        """This request's seed root: explicit pin or next lineage child."""
        if request.seed is not None:
            return np.random.SeedSequence(request.seed)
        return self._root.spawn(1)[0]

    def _variant(self, request) -> str:
        """The request's variant, or the session default when unset."""
        return (
            request.variant
            if request.variant is not None
            else self.default_variant
        )

    # -- execution ------------------------------------------------------

    def _handlers(self) -> dict:
        """Request type -> handler; one entry per registered wire kind."""
        return {
            SampleRequest: self._run_sample,
            EnsembleRequest: self._run_ensemble,
            AuditRequest: self._run_audit,
            RoundBillRequest: self._run_roundbill,
            PageRankRequest: self._run_pagerank,
            MSTRequest: self._run_mst,
        }

    def run(self, request) -> Response:
        """Execute one request; returns the uniform response envelope."""
        handler = self._handlers().get(type(request))
        if handler is None:
            raise ConfigError(
                f"unsupported request type {type(request).__name__!r}"
            )
        seed = self._request_seed(request)
        start = time.perf_counter()
        result, extra_meta = handler(request, seed)
        meta = {
            **self.meta,
            "n": int(self.graph.n),
            "seed": request.seed,
            "linalg_backend": self._linalg_name,
            # The resolved walk-layer placement mode ("batched" runs the
            # per-phase PlacementPlan, "reference" the seed-faithful
            # per-pair path; trees are byte-identical either way).
            "placement_mode": self.config.placement_mode,
            # The RNG contract actually in force ("v2" block draws need
            # a plan, so reference mode always reports "v1").
            "rng_contract": self.config.effective_rng_contract,
            "seconds": round(time.perf_counter() - start, 6),
            # Cumulative session cache counters, captured after the
            # request so every envelope carries tier hit/miss/spill/
            # promote state (DerivedGraphCache.stats used to be dropped
            # on the floor here).
            "cache": self.cache_stats(),
            **extra_meta,
        }
        return Response(kind=request.kind, result=result, meta=meta)

    def stream(self, request, *, stats: dict | None = None):
        """Yield a request's results incrementally.

        Accepts any request whose kind the workload registry marks
        streamable (:func:`~repro.core.workloads.
        streaming_request_kinds`). Ensembles yield draw by draw as
        workers complete; single-result workloads (MST) yield their one
        result record. Either way the outputs are byte-identical to the
        batch :meth:`run` response's for the same ``request.seed`` --
        streaming changes delivery, never outputs. (With ``seed=None``
        each call consumes a fresh lineage child, so two calls
        intentionally draw different results.)

        ``stats``, when given, is a caller-owned dict filled in as the
        stream completes: aggregated worker cache counters plus a
        ``degraded`` flag if the process pool broke mid-stream (the
        serving layer reports both instead of masking the fallback).
        """
        kind = getattr(type(request), "kind", None)
        if kind not in streaming_request_kinds():
            raise ConfigError(
                f"stream() takes a streamable request (kinds "
                f"{streaming_request_kinds()}), got "
                f"{type(request).__name__!r}"
            )
        if not isinstance(request, EnsembleRequest):
            # Single-result workloads: same handler, oracle gate, and
            # seed derivation as run(); the stream is one record long.
            result = self.run(request).result
            if stats is not None:
                stats.update(self.cache_stats())
                stats["degraded"] = False
            yield result
            return
        if request.leverage_audit:
            # The audit is a batch-level aggregate; silently dropping it
            # would betray the request. Batch via run(), or audit the
            # collected stream with analysis.leverage_score_deviation.
            raise ConfigError(
                "leverage_audit is a batch aggregate; use run() for "
                "audited ensembles or audit the collected stream yourself"
            )
        seed = self._request_seed(request)
        driver = EnsembleEngine(self.engine(self._variant(request)))
        yield from driver.iter_ensemble(
            request.count, seed=seed, jobs=request.jobs, stats=stats
        )

    # -- handlers (one per request kind) --------------------------------

    def _run_sample(self, request: SampleRequest, seed) -> tuple:
        rng = np.random.default_rng(seed)
        variant = self._variant(request)
        if variant == "fastcover":
            from repro.core.fastcover import sample_tree_fast_cover

            result = sample_tree_fast_cover(self.graph, rng)
            return FastCoverReport.from_result(result), {"variant": variant}
        result = self.engine(variant).run(rng)
        return result, {"variant": variant}

    def _run_ensemble(self, request: EnsembleRequest, seed) -> tuple:
        variant = self._variant(request)
        driver = EnsembleEngine(self.engine(variant))
        result = driver.sample_ensemble(
            request.count, seed=seed, jobs=request.jobs
        )
        meta: dict = {"variant": variant, "count": request.count}
        if result.degraded:
            # The pool broke and the batch fell back to sequential
            # (identical outputs); surfaced so services can report it.
            meta["degraded"] = True
        if request.leverage_audit:
            from repro.analysis.ensemble import leverage_report_from_result

            meta["leverage"] = {
                key: float(value)
                for key, value in leverage_report_from_result(
                    self.graph, result
                ).items()
            }
        return result, meta

    def _run_audit(self, request: AuditRequest, seed) -> tuple:
        from repro.analysis.tv import (
            chi_square_uniformity,
            expected_tv_noise,
            tv_to_uniform,
        )
        from repro.graphs.spanning import count_spanning_trees

        num_trees = count_spanning_trees(self.graph)
        if num_trees > request.max_enumeration:
            raise ReproError(
                f"graph (n={self.graph.n}) has {num_trees:.2e} trees; pick "
                "a smaller instance for exact-enumeration auditing"
            )
        variant = self._variant(request)
        driver = EnsembleEngine(self.engine(variant))
        ensemble = driver.sample_ensemble(
            request.samples, seed=seed, jobs=request.jobs
        )
        trees = ensemble.trees
        tv = tv_to_uniform(self.graph, trees)
        __, p_value = chi_square_uniformity(self.graph, trees)
        noise = expected_tv_noise(int(round(num_trees)), request.samples)
        report = AuditReport(
            spanning_trees=int(round(num_trees)),
            samples=request.samples,
            tv_to_uniform=float(tv),
            chi_square_p=float(p_value),
            noise_floor=float(noise),
            verdict="UNIFORM" if p_value > 1e-3 else "BIASED",
            mean_rounds=float(ensemble.mean_rounds()),
        )
        return report, {"variant": variant}

    def _run_roundbill(self, request: RoundBillRequest, seed) -> tuple:
        from repro.core.fastcover import sample_tree_fast_cover
        from repro.core.variants import engine_variant_names

        rng = np.random.default_rng(seed)
        # One run per engine-driven registry variant, plus the
        # standalone fast-cover driver. Pre-registry variants (and
        # fast-cover) consume the RNG stream in their historical order,
        # with newer registry variants appended after -- so a pinned
        # seed's approximate/exact/fastcover columns are byte-identical
        # to what pre-broadcast releases reported. A variant the
        # session's config cannot realize (e.g. broadcast under the
        # unicast simulated-3d matmul protocol) keeps its zero-valued
        # default columns rather than failing the whole bill.
        legacy = engine_variant_names()[:2]
        ordered = legacy + tuple(
            name for name in engine_variant_names() if name not in legacy
        )
        runs = {}
        fast = None
        for name in ordered:
            if fast is None and name not in legacy:
                fast = sample_tree_fast_cover(self.graph, rng)
            try:
                engine = self.engine(name)
            except ConfigError:
                continue
            runs[name] = engine.run(rng)
        if fast is None:
            fast = sample_tree_fast_cover(self.graph, rng)
        report = RoundBillReport(
            approximate_rounds=int(runs["approximate"].rounds),
            approximate_phases=int(runs["approximate"].phases),
            exact_rounds=int(runs["exact"].rounds),
            exact_phases=int(runs["exact"].phases),
            fastcover_rounds=int(fast.rounds),
            fastcover_walk_length=int(fast.walk_length),
            broadcast_rounds=int(runs["broadcast"].rounds)
            if "broadcast" in runs
            else 0,
            broadcast_phases=int(runs["broadcast"].phases)
            if "broadcast" in runs
            else 0,
        )
        return report, {"m": int(self.graph.m)}

    def _run_mst(self, request: MSTRequest, seed) -> tuple:
        from repro.core.mst import resolve_weights, run_mst
        from repro.core.workloads import get_workload
        from repro.walks.sequential import kruskal_forest

        spec = get_workload("mst")
        recipe = spec.resolve_recipe(request.recipe)
        # Weights depend only on (graph edge order, mode, seed) -- never
        # on the numerics config -- so pinned-seed instances are
        # host-invariant and identical under either RNG contract.
        weights = resolve_weights(self.graph, request.weights, seed)
        result = run_mst(self.graph, recipe=recipe, weights=weights)
        oracle_forest, oracle_weight = kruskal_forest(self.graph, weights)
        # The oracle gate: the distributed runner and Kruskal share the
        # (weight, edge index) total order, under which the MSF is
        # unique -- so exact edge-set AND weight equality must hold even
        # on tie-prone instances. Anything else is a bug, not noise.
        if (
            result.forest != oracle_forest
            or result.total_weight != oracle_weight
        ):
            raise ReproError(
                "MST oracle gate failed: distributed forest "
                f"(weight {result.total_weight!r}) disagrees with the "
                f"sequential Kruskal oracle (weight {oracle_weight!r})"
            )
        report = MSTReport(
            forest=[[int(u), int(v)] for u, v in result.forest],
            total_weight=float(result.total_weight),
            recipe=recipe.name,
            weights=request.weights,
            phases=int(result.phases),
            rounds=int(result.rounds),
            categories={
                key: int(value)
                for key, value in result.ledger.rounds_by_category().items()
            },
            oracle=str(spec.oracle),
            oracle_weight=float(oracle_weight),
            oracle_match=True,
        )
        meta = {"m": int(self.graph.m), "comm_model": recipe.comm_model}
        return report, meta

    def _run_pagerank(self, request: PageRankRequest, seed) -> tuple:
        from repro.walks.pagerank import pagerank_exact, pagerank_via_walks

        exact = pagerank_exact(self.graph, damping=request.damping)
        estimate = pagerank_via_walks(
            self.graph,
            damping=request.damping,
            walks_per_vertex=request.walks_per_vertex,
            rng=np.random.default_rng(seed),
        )
        report = PageRankReport(
            damping=float(request.damping),
            walks_per_vertex=int(request.walks_per_vertex),
            walk_length=int(estimate.walk_length),
            rounds=int(estimate.rounds),
            l1_error=float(estimate.l1_error(exact)),
            scores=[float(score) for score in estimate.scores],
            exact_scores=[float(score) for score in exact],
        )
        return report, {}
