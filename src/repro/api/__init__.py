"""The session-based public API: the one way in for every workload.

This package is the service-facing surface the ROADMAP's production story
builds on (and the CLI's only backend):

- :class:`~repro.api.session.Session` -- a long-lived binding of one
  graph to shared execution state (derived-graph cache, per-variant
  engines, RNG lineage);
- :mod:`~repro.api.requests` -- frozen, JSON-serializable request
  dataclasses (:class:`SampleRequest`, :class:`EnsembleRequest`,
  :class:`AuditRequest`, :class:`RoundBillRequest`,
  :class:`PageRankRequest`, :class:`MSTRequest`);
- :mod:`~repro.api.responses` -- the uniform :class:`Response` envelope
  with lossless ``to_dict``/:func:`response_from_dict` JSON round trips
  for every result type;
- :mod:`~repro.api.presets` -- the named configuration recipes
  (``"paper-approximate"``, ``"paper-exact"``, ``"paper-broadcast"``,
  ``"fast-bench"``, ``"fast-audit"``, ...).

Variant validation everywhere in this package derives from the
:mod:`repro.core.variants` registry -- registering a new
:class:`~repro.core.variants.VariantSpec` makes it addressable from
requests, presets, sessions, the CLI, and the service envelope without
further edits. Workload routing (which request kinds exist, which of
them stream) likewise derives from the :mod:`repro.core.workloads`
registry.

The pre-session entry points (:func:`repro.sample_spanning_tree`,
:meth:`~repro.core.sampler.CongestedCliqueTreeSampler.sample_many`,
:func:`repro.engine.ensemble.sample_tree_ensemble`) remain supported as
thin shims over the same engines.
"""

from repro.api.presets import (
    PRESETS,
    Preset,
    get_preset,
    preset_config,
    resolve_config,
)
from repro.api.requests import (
    REQUEST_TYPES,
    AuditRequest,
    EnsembleRequest,
    MSTRequest,
    PageRankRequest,
    RoundBillRequest,
    SampleRequest,
    request_from_dict,
)
from repro.api.responses import (
    RESULT_TYPES,
    AuditReport,
    FastCoverReport,
    MSTReport,
    PageRankReport,
    Response,
    RoundBillReport,
    response_from_dict,
)
from repro.api.session import Session

__all__ = [
    "Session",
    "SampleRequest",
    "EnsembleRequest",
    "AuditRequest",
    "RoundBillRequest",
    "PageRankRequest",
    "MSTRequest",
    "request_from_dict",
    "REQUEST_TYPES",
    "Response",
    "AuditReport",
    "RoundBillReport",
    "FastCoverReport",
    "PageRankReport",
    "MSTReport",
    "response_from_dict",
    "RESULT_TYPES",
    "Preset",
    "PRESETS",
    "get_preset",
    "preset_config",
    "resolve_config",
]
