"""Weighted perfect matching sampling (Sections 1.8 and 2.1.3).

The sampler's walk-reconstruction step reduces to sampling a perfect
matching of a complete bipartite graph B with probability proportional to
the product of the matching's edge weights; the sum of all matching weights
is the permanent of B's biadjacency matrix. The paper invokes the
Jerrum-Sinclair-Vigoda permanent FPRAS [46] plus the Jerrum-Valiant-
Vazirani sampling-from-counting reduction [47].

We provide three interchangeable samplers (see DESIGN.md section 1 for the
substitution argument):

- :func:`~repro.matching.sampler.sample_matching_exact` -- exact
  self-reducible sampling with Ryser permanents (small instances);
- :class:`~repro.matching.sampler.ClassifiedBipartite` +
  :func:`~repro.matching.sampler.sample_assignment_by_classes` -- exact
  sampling exploiting B's class structure (rows/columns with identical
  weight profiles), the library default;
- :func:`~repro.matching.sampler.sample_matching_mcmc` -- a Metropolis
  chain over permutations, the polynomial-time approximate stand-in that
  exercises the paper's "approximate sampler + union bound" analysis
  (Lemma 4).
"""

from repro.matching.permanent import (
    permanent_class_dp,
    permanent_exact,
    permanent_ryser,
)
from repro.matching.sampler import (
    ClassifiedBipartite,
    expand_table_to_assignment,
    instance_digest,
    prepare_contingency_dp,
    sample_assignment_by_classes,
    sample_contingency_table,
    sample_matching_exact,
    sample_matching_mcmc,
)

__all__ = [
    "permanent_class_dp",
    "permanent_exact",
    "permanent_ryser",
    "ClassifiedBipartite",
    "expand_table_to_assignment",
    "instance_digest",
    "prepare_contingency_dp",
    "sample_assignment_by_classes",
    "sample_contingency_table",
    "sample_matching_exact",
    "sample_matching_mcmc",
]
