"""Matrix permanents: Ryser's formula and a class-compressed DP.

The permanent of the biadjacency matrix of an edge-weighted complete
bipartite graph equals the total weight of its perfect matchings (Section
1.8), which is why it appears in the paper's walk reconstruction.

Two evaluators:

- :func:`permanent_ryser` -- Ryser's inclusion-exclusion with Gray-code
  updates, exact in O(2^n n) for general matrices (practical to n ~ 20);
- :func:`permanent_class_dp` -- exact permanent of a matrix whose rows and
  columns come in *classes* of identical vectors, in time polynomial in
  the class counts. This exploits the structure of the sampler's bipartite
  graph B: edge weights depend only on (midpoint identity, start-end pair
  of the position), so B has at most O(sqrt(n)) row classes and O(n)
  column classes regardless of how many midpoints are being placed.

Derivation of the DP: group rows into classes r with multiplicities
``a_r`` and columns into classes c with multiplicities ``b_c``. A perfect
matching induces a contingency table ``T[r, c]`` (edges between class r and
class c) with row sums ``a_r`` and column sums ``b_c``. The number of
matchings inducing a given T is

    #matchings(T) = prod_r multinomial(a_r; T[r, :]) * prod_c b_c!
                  = prod_r a_r! * prod_c b_c! / prod_{r,c} T[r,c]!

(split each row class across column classes, then permute freely within
each column class), so

    perm = prod_r a_r! * prod_c b_c! *
           sum_T prod_{r,c} w(r,c)^{T[r,c]} / T[r,c]!

-- the fully factorized form used below; tests verify equality with Ryser
on expanded matrices.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import math

import numpy as np

from repro.errors import MatchingError

__all__ = ["permanent_ryser", "permanent_exact", "permanent_class_dp"]

_RYSER_LIMIT = 22


def permanent_ryser(matrix: np.ndarray) -> float:
    """Exact permanent via Ryser's formula with Gray-code subset updates.

    ``perm(A) = (-1)^n sum_{S subset of columns} (-1)^{|S|}
    prod_i sum_{j in S} A[i, j]``. Complexity O(2^n n); guarded at
    n <= 22 to keep runtime sane.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise MatchingError(f"permanent needs a square matrix, got {a.shape}")
    n = a.shape[0]
    if n == 0:
        return 1.0
    if n > _RYSER_LIMIT:
        raise MatchingError(
            f"Ryser evaluation limited to n <= {_RYSER_LIMIT}, got {n}; "
            "use permanent_class_dp or the MCMC sampler"
        )
    row_sums = np.zeros(n, dtype=np.float64)
    total = 0.0
    gray = 0
    for k in range(1, 1 << n):
        # Gray code: exactly one column enters or leaves the subset.
        next_gray = k ^ (k >> 1)
        changed_bit = gray ^ next_gray
        column = changed_bit.bit_length() - 1
        if next_gray & changed_bit:
            row_sums += a[:, column]
        else:
            row_sums -= a[:, column]
        gray = next_gray
        # Accumulated sign is (-1)^n * (-1)^{|S|} = (-1)^{n - |S|}.
        subset_sign = -1.0 if (n - bin(gray).count("1")) % 2 else 1.0
        total += subset_sign * float(np.prod(row_sums))
    return total


def permanent_exact(matrix: np.ndarray) -> float:
    """Exact permanent, dispatching to the best available evaluator."""
    return permanent_ryser(matrix)


def _compositions(total: int, caps: Sequence[int]) -> list[tuple[int, ...]]:
    """All vectors k with sum(k) == total and 0 <= k[i] <= caps[i]."""
    results: list[tuple[int, ...]] = []

    def recurse(prefix: list[int], remaining: int, index: int) -> None:
        if index == len(caps):
            if remaining == 0:
                results.append(tuple(prefix))
            return
        # Prune: remaining must be coverable by the residual caps.
        residual = sum(caps[index:])
        if remaining > residual:
            return
        for value in range(min(caps[index], remaining) + 1):
            prefix.append(value)
            recurse(prefix, remaining - value, index + 1)
            prefix.pop()

    recurse([], total, 0)
    return results


@lru_cache(maxsize=65536)
def compositions_array(total: int, caps: tuple[int, ...]) -> np.ndarray:
    """:func:`_compositions` as a cached read-only ``(m, len(caps))`` array.

    Composition enumeration depends only on the integer shape ``(total,
    caps)``, which repeats heavily across the contingency-table DP's
    states, placement levels, and ensemble draws -- memoizing it globally
    removes the dominant pure-Python cost of the class-DP matching
    sampler. Rows preserve :func:`_compositions`'s enumeration order (the
    samplers' option indexing relies on it).
    """
    comps = _compositions(total, caps)
    array = np.asarray(comps, dtype=np.int64).reshape(len(comps), len(caps))
    array.setflags(write=False)
    return array


def _stable_allocation_factor(
    weights: np.ndarray, col_index: int, allocation: Sequence[int]
) -> float:
    """``prod_r w[r, c]^{k_r} / k_r!`` evaluated as ``exp(sum k log w -
    lgamma(k + 1))`` so large multiplicities cannot overflow."""
    log_factor = 0.0
    for r, k in enumerate(allocation):
        if k == 0:
            continue
        w = float(weights[r, col_index])
        if w <= 0.0:
            return 0.0
        log_factor += k * math.log(w) - math.lgamma(k + 1)
    return math.exp(log_factor)


def permanent_class_dp(
    class_weights: np.ndarray,
    row_counts: Sequence[int],
    col_counts: Sequence[int],
) -> float:
    """Exact permanent of a matrix with repeated rows and columns.

    Parameters
    ----------
    class_weights:
        ``(R, C)`` matrix; entry ``[r, c]`` is the common weight between
        any row of class r and any column of class c.
    row_counts / col_counts:
        Multiplicities ``a_r`` / ``b_c``; the expanded matrix is square
        when ``sum(a) == sum(b)`` (else the permanent is 0 and we raise).

    Implements

        perm = prod_r a_r! * prod_c b_c! *
               sum_T prod_{r,c} w[r,c]^{T[r,c]} / T[r,c]!

    by dynamic programming over column classes with the vector of
    remaining row multiplicities as state.
    """
    weights = np.asarray(class_weights, dtype=np.float64)
    a = tuple(int(x) for x in row_counts)
    b = tuple(int(x) for x in col_counts)
    if weights.shape != (len(a), len(b)):
        raise MatchingError(
            f"class weight shape {weights.shape} inconsistent with "
            f"{len(a)} row / {len(b)} column classes"
        )
    if any(x < 0 for x in a) or any(x < 0 for x in b):
        raise MatchingError("class multiplicities must be non-negative")
    if sum(a) != sum(b):
        raise MatchingError(
            f"expanded matrix is not square ({sum(a)} rows vs {sum(b)} cols)"
        )
    if np.any(weights < 0):
        raise MatchingError("matching weights must be non-negative")
    num_rows = len(a)

    @lru_cache(maxsize=None)
    def partial(col_index: int, remaining: tuple[int, ...]) -> float:
        """sum over tables for column classes col_index.. of the factorized
        weight prod w^T / T!, given remaining row multiplicities."""
        if col_index == len(b):
            return 1.0 if all(x == 0 for x in remaining) else 0.0
        total = 0.0
        for allocation in _compositions(b[col_index], remaining):
            factor = _stable_allocation_factor(weights, col_index, allocation)
            if factor == 0.0:
                continue
            rest = tuple(remaining[r] - allocation[r] for r in range(num_rows))
            total += factor * partial(col_index + 1, rest)
        return total

    core = partial(0, a)
    partial.cache_clear()
    if core <= 0.0:
        return 0.0
    # The factorial prefactor can exceed float range on its own; combine in
    # log space and report inf when the true value genuinely overflows.
    log_result = math.log(core)
    for count in a:
        log_result += math.lgamma(count + 1)
    for count in b:
        log_result += math.lgamma(count + 1)
    try:
        return math.exp(log_result)
    except OverflowError:
        return math.inf
