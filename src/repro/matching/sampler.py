"""Samplers for weight-proportional perfect matchings (Section 2.1.3).

The walk-reconstruction bipartite graph B joins the midpoint multiset M'
to the midpoint positions P', with the weight of edge (x, y) equal to
``P^{delta/2}[p, x] * P^{delta/2}[x, q]`` when position y lies between the
start-end pair (p, q). We must sample a perfect matching of B with
probability proportional to the product of its edge weights (Lemma 3).

Because the weight depends only on x's identity and y's pair, B's rows and
columns fall into classes, and the matching distribution factorizes through
a contingency table. :func:`sample_contingency_table` samples that table
*exactly* by DP (same recursion as
:func:`repro.matching.permanent.permanent_class_dp`), and
:func:`expand_table_to_assignment` turns the table into a concrete
assignment by uniform multiset permutations -- together an exact (TV error
0) replacement for the paper's JSV + JVV pipeline. The general-purpose
:func:`sample_matching_exact` (self-reducible Ryser) and
:func:`sample_matching_mcmc` (Metropolis) are provided for validation and
for the approximate-sampler code path of Lemma 4.

The DP is split into a deterministic *build* (feasibility, composition
tables, forward reachability, backward log-partition values -- no
randomness) and a cheap randomness-consuming *sampling pass*:
:func:`prepare_contingency_dp` returns the built evaluator so batch
workloads (:class:`repro.core.placement_plan.PlacementPlan`) can reuse
one build across every draw that meets an isomorphic instance
(:func:`instance_digest`); :func:`sample_contingency_table` is the
one-shot composition of the two.

Prepared evaluators expose two sampling passes over the identical law:

- ``sample(rng)`` -- the v1 contract: one ``Generator.choice(p=...)``
  per column class, byte-faithful to the pre-plan implementation.
- ``sample_block(rng)`` -- the v2 contract: ONE uniform vector per draw
  (``rng.random(num_columns)``), each column resolved by
  ``np.searchsorted`` against a per-(column, remaining-state) CDF table.
  The root-column table is built eagerly at prepare time; deeper states
  are memoized on first visit, so warm draws touch no ``exp``/normalize
  at all. The memo round-trips through ``export_cdf_entries`` /
  ``from_cdf_seed`` so a :class:`~repro.core.placement_plan.PlacementPlan`
  can persist the hottest instances' CDF tables and a restarted process
  can serve its first draws without re-running the forward/backward
  passes (the build is deferred until a state-memo miss).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.errors import MatchingError
from repro.matching.permanent import (
    _compositions,
    compositions_array,
    permanent_ryser,
)

__all__ = [
    "ClassifiedBipartite",
    "sample_matching_exact",
    "sample_matching_mcmc",
    "sample_contingency_table",
    "expand_table_to_assignment",
    "sample_assignment_by_classes",
    "prepare_contingency_dp",
    "restore_prepared_vectorized",
    "instance_digest",
]


def sample_matching_exact(
    weights: np.ndarray, rng: np.random.Generator | None = None
) -> list[int]:
    """Exactly sample a permutation sigma with P(sigma) prop to prod w[i, sigma(i)].

    Self-reducible sampling: match row 0 to column j with probability
    ``w[0, j] * perm(minor_{0 j}) / perm(w)`` and recurse on the minor.
    Cost: O(n) permanent evaluations of decreasing size -- fine for the
    n <= ~12 instances used in validation.

    Returns ``assignment`` with ``assignment[i] = sigma(i)``.
    """
    rng = np.random.default_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise MatchingError(f"need a square weight matrix, got {w.shape}")
    n = w.shape[0]
    remaining_cols = list(range(n))
    assignment: list[int] = []
    current = w
    for _ in range(n):
        total = permanent_ryser(current)
        if total <= 0:
            raise MatchingError(
                "bipartite instance admits no positive-weight perfect matching"
            )
        probabilities = np.empty(current.shape[1])
        for j in range(current.shape[1]):
            minor = np.delete(np.delete(current, 0, axis=0), j, axis=1)
            probabilities[j] = current[0, j] * permanent_ryser(minor)
        probabilities = np.clip(probabilities, 0.0, None)
        cdf = np.cumsum(probabilities)
        if cdf[-1] <= 0:
            raise MatchingError("row has no extensible column choice")
        # Inverse-CDF over the unnormalized weights: scaling the uniform
        # by the cumulative total samples the same law as normalizing the
        # vector, without the redundant divide (and without choice()'s
        # second pass over p to validate it).
        choice = int(cdf.searchsorted(rng.random() * cdf[-1], "right"))
        choice = min(choice, len(probabilities) - 1)
        assignment.append(remaining_cols[choice])
        remaining_cols.pop(choice)
        current = np.delete(np.delete(current, 0, axis=0), choice, axis=1)
    return assignment


def sample_matching_mcmc(
    weights: np.ndarray,
    *,
    steps: int | None = None,
    rng: np.random.Generator | None = None,
    initial: Sequence[int] | None = None,
) -> list[int]:
    """Metropolis chain over permutations targeting P(sigma) prop to prod w.

    Proposal: a uniformly random transposition of two positions; acceptance
    ``min(1, ratio)`` with the 4-entry weight ratio. This is the
    polynomial-time *approximate* sampler exercising Lemma 4's TV-error
    analysis (the JSV/JVV pipeline stand-in; see DESIGN.md). ``steps``
    defaults to ``10 * n^3`` proposals capped at 100k -- placement
    instances can reach hundreds of midpoints, where the uncapped cubic
    budget would dominate the whole pipeline while the transposition
    chain on such dense-weight instances mixes long before the cap.
    Zero-weight entries are handled by
    rejecting moves into weight-0 configurations (the chain must start at a
    positive-weight permutation; the identity is used unless ``initial`` is
    given).
    """
    rng = np.random.default_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise MatchingError(f"need a square weight matrix, got {w.shape}")
    n = w.shape[0]
    if n == 0:
        return []
    if steps is None:
        steps = max(100, min(10 * n**3, 100_000))
    sigma = list(range(n)) if initial is None else list(initial)
    if sorted(sigma) != list(range(n)):
        raise MatchingError("initial state must be a permutation")
    current = np.array([w[i, sigma[i]] for i in range(n)])
    if np.any(current <= 0):
        raise MatchingError(
            "initial permutation has zero weight; provide a feasible start"
        )
    for _ in range(steps):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        new_i, new_j = w[i, sigma[j]], w[j, sigma[i]]
        if new_i <= 0 or new_j <= 0:
            continue
        ratio = (new_i * new_j) / (current[i] * current[j])
        if ratio >= 1.0 or rng.random() < ratio:
            sigma[i], sigma[j] = sigma[j], sigma[i]
            current[i], current[j] = new_i, new_j
    return sigma


# ---------------------------------------------------------------------------
# Class-structured exact sampling (the library default)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassifiedBipartite:
    """A bipartite matching instance with class-compressed sides.

    Attributes
    ----------
    row_labels:
        One label per row class (e.g. midpoint vertex IDs).
    row_counts:
        Multiplicity of each row class (how many copies of that midpoint
        are in the multiset M').
    col_labels:
        One label per column class (e.g. start-end pairs (p, q)).
    col_counts:
        Multiplicity of each column class (how many positions share that
        pair).
    class_weights:
        ``(R, C)`` weights: w[r, c] is the weight of matching a class-r
        row to a class-c column.
    """

    row_labels: tuple[Hashable, ...]
    row_counts: tuple[int, ...]
    col_labels: tuple[Hashable, ...]
    col_counts: tuple[int, ...]
    class_weights: np.ndarray

    def __post_init__(self) -> None:
        r, c = len(self.row_labels), len(self.col_labels)
        if len(self.row_counts) != r or len(self.col_counts) != c:
            raise MatchingError("label/count length mismatch")
        if self.class_weights.shape != (r, c):
            raise MatchingError(
                f"class weight shape {self.class_weights.shape} != ({r}, {c})"
            )
        if sum(self.row_counts) != sum(self.col_counts):
            raise MatchingError(
                f"unbalanced instance: {sum(self.row_counts)} rows vs "
                f"{sum(self.col_counts)} columns"
            )
        if any(k < 0 for k in self.row_counts + self.col_counts):
            raise MatchingError("class counts must be non-negative")
        if np.any(np.asarray(self.class_weights) < 0):
            raise MatchingError("matching weights must be non-negative")

    @property
    def size(self) -> int:
        """Number of rows (= columns) of the expanded instance."""
        return sum(self.row_counts)

    def expanded_weights(self) -> np.ndarray:
        """The full (size x size) weight matrix, for validation only."""
        rows = np.repeat(np.arange(len(self.row_counts)), self.row_counts)
        cols = np.repeat(np.arange(len(self.col_counts)), self.col_counts)
        return np.asarray(self.class_weights)[np.ix_(rows, cols)]


_SMALL_INSTANCE_SIZE = 6


def _trivial_table(instance: ClassifiedBipartite) -> np.ndarray | None:
    """Closed-form table for single-row/column instances (one atom law).

    With one column class every row multiset lands in it; with one row
    class every column receives that class. Either way the contingency
    table is forced, so no DP or randomness is needed -- only the
    positive-weight feasibility check.
    """
    a = instance.row_counts
    b = instance.col_counts
    weights = np.asarray(instance.class_weights, dtype=np.float64)
    if len(b) == 1:
        for r, count in enumerate(a):
            if count > 0 and weights[r, 0] <= 0.0:
                raise MatchingError(
                    "instance admits no positive-weight perfect matching "
                    "(class permanent is zero)"
                )
        return np.asarray(a, dtype=np.int64).reshape(len(a), 1)
    if len(a) == 1:
        for c, count in enumerate(b):
            if count > 0 and weights[0, c] <= 0.0:
                raise MatchingError(
                    "instance admits no positive-weight perfect matching "
                    "(class permanent is zero)"
                )
        return np.asarray(b, dtype=np.int64).reshape(1, len(b))
    return None


def instance_digest(instance: ClassifiedBipartite) -> str:
    """Content address of the DP-relevant part of an instance.

    Two instances with equal ``(row_counts, col_counts, class_weights)``
    are *isomorphic* for the contingency DP: labels only matter when a
    table is expanded to an assignment. The digest is what lets a
    :class:`~repro.core.placement_plan.PlacementPlan` reuse one prepared
    DP across pairs, levels, and ensemble draws.
    """
    digest = hashlib.sha1()
    digest.update(
        repr((tuple(instance.row_counts), tuple(instance.col_counts))).encode()
    )
    digest.update(
        np.ascontiguousarray(
            np.asarray(instance.class_weights, dtype=np.float64)
        ).tobytes()
    )
    return digest.hexdigest()


class _PreparedTrivial:
    """Closed-form single-row/column-class table; consumes no randomness."""

    consumes_rng = False

    def __init__(self, table: np.ndarray) -> None:
        self._table = table

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        return self._table.copy()

    # The v2 block contract: still no randomness (the table is forced).
    sample_block = sample

    def nbytes(self) -> int:
        return int(self._table.nbytes)


class _PreparedReference:
    """The pure-Python suffix DP, built once and sampled many times.

    Mirrors the seed implementation exactly -- same composition
    enumeration order, same log-space accumulation order -- so the
    sampled option probabilities are bit-identical; the only difference
    is that the suffix memo (and optionally the composition memo) lives
    on the object instead of being rebuilt and cleared per call.
    """

    consumes_rng = True

    def __init__(
        self,
        instance: ClassifiedBipartite,
        comp_memo: dict | None = None,
    ) -> None:
        self._weights = np.asarray(instance.class_weights, dtype=np.float64)
        self._a = tuple(int(k) for k in instance.row_counts)
        self._b = tuple(int(k) for k in instance.col_counts)
        self._suffix: dict[tuple[int, tuple[int, ...]], float] = {}
        # (col_index, remaining) -> (options, probabilities, cdf): the
        # deterministic per-state option law, computed once and shared by
        # both sampling contracts (the floats are identical to what the
        # seed implementation recomputed per draw).
        self._options: dict[
            tuple[int, tuple[int, ...]],
            tuple[list[tuple[int, ...]], np.ndarray, np.ndarray],
        ] = {}
        self._comps = comp_memo if comp_memo is not None else {}
        if self._log_suffix(0, self._a) == -math.inf:
            raise MatchingError(
                "instance admits no positive-weight perfect matching "
                "(class permanent is zero)"
            )

    def _compositions(
        self, total: int, remaining: tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        key = (total, remaining)
        hit = self._comps.get(key)
        if hit is None:
            hit = _compositions(total, remaining)
            self._comps[key] = hit
        return hit

    def nbytes(self) -> int:
        """Rough bytes of the suffix memo (~56B per float cache slot)."""
        total = 56 * len(self._suffix)
        for options, probabilities, cdf in self._options.values():
            total += 24 * len(options) + probabilities.nbytes + cdf.nbytes
        return total

    def _state_options(
        self, col_index: int, remaining: tuple[int, ...]
    ) -> tuple[list[tuple[int, ...]], np.ndarray, np.ndarray]:
        key = (col_index, remaining)
        hit = self._options.get(key)
        if hit is not None:
            return hit
        num_rows = len(self._a)
        options = []
        option_logs = []
        for allocation in self._compositions(self._b[col_index], remaining):
            log_factor = _log_allocation_factor(
                self._weights, col_index, allocation
            )
            if log_factor == -math.inf:
                continue
            rest = tuple(
                remaining[r] - allocation[r] for r in range(num_rows)
            )
            tail = self._log_suffix(col_index + 1, rest)
            if tail == -math.inf:
                continue
            options.append(allocation)
            option_logs.append(log_factor + tail)
        if not options:
            raise MatchingError(
                f"dead end at column class {col_index}: "
                "no feasible allocation"
            )
        logs = np.asarray(option_logs)
        probabilities = np.exp(logs - logs.max())
        probabilities = probabilities / probabilities.sum()
        entry = (options, probabilities, np.cumsum(probabilities))
        self._options[key] = entry
        return entry

    def _log_suffix(self, col_index: int, remaining: tuple[int, ...]) -> float:
        key = (col_index, remaining)
        hit = self._suffix.get(key)
        if hit is not None:
            return hit
        if col_index == len(self._b):
            value = 0.0 if all(x == 0 for x in remaining) else -math.inf
        else:
            num_rows = len(self._a)
            terms: list[float] = []
            for allocation in self._compositions(self._b[col_index], remaining):
                log_factor = _log_allocation_factor(
                    self._weights, col_index, allocation
                )
                if log_factor == -math.inf:
                    continue
                rest = tuple(
                    remaining[r] - allocation[r] for r in range(num_rows)
                )
                tail = self._log_suffix(col_index + 1, rest)
                if tail == -math.inf:
                    continue
                terms.append(log_factor + tail)
            value = _logsumexp(terms)
        self._suffix[key] = value
        return value

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        num_rows = len(self._a)
        remaining = self._a
        table = np.zeros((num_rows, len(self._b)), dtype=np.int64)
        for col_index in range(len(self._b)):
            options, probabilities, __ = self._state_options(
                col_index, remaining
            )
            choice = int(rng.choice(len(options), p=probabilities))
            allocation = options[choice]
            table[:, col_index] = allocation
            remaining = tuple(
                remaining[r] - allocation[r] for r in range(num_rows)
            )
        return table

    def sample_block(self, rng: np.random.Generator) -> np.ndarray:
        """The v2 contract: one uniform block, inverse-CDF per column."""
        num_rows = len(self._a)
        num_cols = len(self._b)
        uniforms = rng.random(num_cols)
        remaining = self._a
        table = np.zeros((num_rows, num_cols), dtype=np.int64)
        for col_index in range(num_cols):
            options, __, cdf = self._state_options(col_index, remaining)
            choice = int(
                cdf.searchsorted(uniforms[col_index] * cdf[-1], "right")
            )
            choice = min(choice, len(options) - 1)
            allocation = options[choice]
            table[:, col_index] = allocation
            remaining = tuple(
                remaining[r] - allocation[r] for r in range(num_rows)
            )
        return table


class _PreparedVectorized:
    """The layered numpy DP with its deterministic passes precomputed.

    Everything value-dependent is computed at build time: log weights
    (zero weights masked, handled via feasibility tests so 0 * -inf never
    appears), a factorial table for the 1/k! terms, one composition table
    per column capped at the *full* row counts, the forward reachability
    layers, and the backward log-partition values. States (remaining
    row-count vectors) are encoded in a mixed radix so layers can be
    deduplicated, sorted, and joined with searchsorted. Sampling then
    costs one feasibility mask + searchsorted per column class -- the
    only randomness-consuming part, so a plan can reuse one build across
    every draw that meets the same (counts, weights) instance.
    """

    consumes_rng = True
    _BLOCK_ELEMENTS = 4_000_000

    def __init__(self, instance: ClassifiedBipartite, *, build: bool = True) -> None:
        a = tuple(int(k) for k in instance.row_counts)
        b = tuple(int(k) for k in instance.col_counts)
        num_rows = len(a)
        self._a = a
        self._b = b
        strides = np.empty(num_rows, dtype=np.int64)
        acc = 1
        for r in range(num_rows - 1, -1, -1):
            strides[r] = acc
            acc *= a[r] + 1
        self._strides = strides
        self._a_arr = np.asarray(a, dtype=np.int64)
        self._root_code = int(self._a_arr @ strides)
        # (col_index, remaining_code) -> (allocations, cdf): the per-state
        # option CDF tables of the v2 block contract. The root-column
        # table is built eagerly with the DP; deeper states are memoized
        # on first visit during sample_block. cdf_memo_dirty flags growth
        # since the plan last exported the memo (persistence).
        self._cdf_memo: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray]
        ] = {}
        self.cdf_memo_dirty = False
        # The deterministic forward/backward build can be deferred when
        # the memo was seeded from a persisted plan (from_cdf_seed): warm
        # draws then never pay for it, and a state miss triggers it late.
        self._source = instance
        self._built = False
        if build:
            self._ensure_built()

    @classmethod
    def from_cdf_seed(
        cls,
        instance: ClassifiedBipartite,
        entries: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]],
    ) -> "_PreparedVectorized":
        """An evaluator whose CDF memo is pre-seeded and whose DP build
        is deferred until a memo miss (restart warm path)."""
        prepared = cls(instance, build=False)
        prepared._cdf_memo.update(entries)
        return prepared

    def _ensure_built(self) -> None:
        if self._built:
            return
        instance = self._source
        weights = np.asarray(instance.class_weights, dtype=np.float64)
        a = self._a
        b = self._b
        num_rows = len(a)
        num_cols = len(b)
        strides = self._strides
        a_arr = self._a_arr

        positive = weights > 0.0
        with np.errstate(divide="ignore"):
            log_weights = np.where(
                positive, np.log(np.where(positive, weights, 1.0)), 0.0
            )
        max_count = max(a, default=0)
        lgamma_table = np.array(
            [math.lgamma(k + 1) for k in range(max_count + 1)]
        )

        col_comps: list[np.ndarray] = []
        col_log_factors: list[np.ndarray] = []
        for c in range(num_cols):
            caps = tuple(min(r, b[c]) for r in a)
            comps = compositions_array(b[c], caps)
            if comps.shape[0] == 0:
                log_factors = np.empty(0)
            else:
                log_factors = (
                    comps @ log_weights[:, c] - lgamma_table[comps].sum(axis=1)
                )
                blocked = ~positive[:, c]
                if blocked.any():
                    infeasible = (comps[:, blocked] > 0).any(axis=1)
                    log_factors = np.where(infeasible, -np.inf, log_factors)
            col_comps.append(comps)
            col_log_factors.append(log_factors)
        self._col_comps = col_comps
        self._col_log_factors = col_log_factors
        # Static per-column pieces of the sampling pass, hoisted out of
        # sample() so warm draws pay only the remaining-dependent work:
        # the finite-factor mask and each allocation's radix code.
        self._col_finite = [np.isfinite(lf) for lf in col_log_factors]
        self._col_comp_codes = [comps @ strides for comps in col_comps]

        # Forward pass: reachable states after each column's allocation.
        layers: list[tuple[np.ndarray, np.ndarray]] = []
        states = a_arr.reshape(1, num_rows)
        layers.append((states, states @ strides))
        for c in range(num_cols):
            comps_f, __ = self._finite_columns(c)
            states = layers[-1][0]
            rest_blocks: list[np.ndarray] = []
            if comps_f.shape[0] and states.shape[0]:
                block = max(
                    1, self._BLOCK_ELEMENTS // (comps_f.shape[0] * num_rows + 1)
                )
                for lo in range(0, states.shape[0], block):
                    chunk = states[lo:lo + block]
                    feasible = (
                        comps_f[None, :, :] <= chunk[:, None, :]
                    ).all(axis=2)
                    rest_blocks.append(
                        (chunk[:, None, :] - comps_f[None, :, :])[feasible]
                    )
            if rest_blocks:
                rests = np.concatenate(rest_blocks, axis=0)
            else:
                rests = np.empty((0, num_rows), dtype=np.int64)
            codes = rests @ strides
            codes, first = np.unique(codes, return_index=True)
            layers.append((rests[first], codes))
        self._layers = layers

        # Backward pass: log partition values per layer (the log_suffix DP,
        # vectorized over whole (state, allocation) blocks at once).
        values: list[np.ndarray | None] = [None] * (num_cols + 1)
        final_codes = layers[num_cols][1]
        values[num_cols] = np.where(final_codes == 0, 0.0, -np.inf)
        for c in range(num_cols - 1, -1, -1):
            states, codes = layers[c]
            comps_f, log_factors_f = self._finite_columns(c)
            level = np.full(states.shape[0], -np.inf)
            if comps_f.shape[0] and states.shape[0]:
                next_codes = layers[c + 1][1]
                next_values = values[c + 1]
                comp_codes = comps_f @ strides
                block = max(
                    1, self._BLOCK_ELEMENTS // (comps_f.shape[0] * num_rows + 1)
                )
                for lo in range(0, states.shape[0], block):
                    chunk = states[lo:lo + block]
                    feasible = (
                        comps_f[None, :, :] <= chunk[:, None, :]
                    ).all(axis=2)
                    rest_codes = codes[lo:lo + block, None] - comp_codes[None, :]
                    tails = _lookup(rest_codes, next_codes, next_values)
                    totals = np.where(
                        feasible & np.isfinite(tails),
                        log_factors_f[None, :] + tails,
                        -np.inf,
                    )
                    peak = totals.max(axis=1)
                    live = peak > -np.inf
                    if live.any():
                        shifted = np.exp(totals[live] - peak[live, None])
                        level[lo:lo + block][live] = (
                            peak[live] + np.log(shifted.sum(axis=1))
                        )
            values[c] = level
        self._values = values

        if values[0][0] == -math.inf:
            raise MatchingError(
                "instance admits no positive-weight perfect matching "
                "(class permanent is zero)"
            )
        self._built = True
        # Eager root table: every draw starts at (column 0, full counts),
        # so the "built once at prepare time" CDF is always this one.
        root = (0, self._root_code)
        if num_cols and root not in self._cdf_memo:
            self._cdf_memo[root] = self._state_cdf(0, a_arr, self._root_code)
            self.cdf_memo_dirty = True

    def _finite_columns(self, col_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Allocations with a finite weight factor (the only contributors)."""
        finite = np.isfinite(self._col_log_factors[col_index])
        return (
            self._col_comps[col_index][finite],
            self._col_log_factors[col_index][finite],
        )

    def nbytes(self) -> int:
        """Bytes of the layered DP state (layers, values, per-column aux).

        Composition tables are shared through the global
        :func:`compositions_array` cache, so they are charged there, not
        per prepared object.
        """
        total = 0
        for allocations, cdf in self._cdf_memo.values():
            total += allocations.nbytes + cdf.nbytes
        if not self._built:
            return int(total)
        for states, codes in self._layers:
            total += states.nbytes + codes.nbytes
        for values in self._values:
            if values is not None:
                total += values.nbytes
        for mask in self._col_finite:
            total += mask.nbytes
        for codes in self._col_comp_codes:
            total += codes.nbytes
        for factors in self._col_log_factors:
            total += factors.nbytes
        return int(total)

    def _state_cdf(
        self, col_index: int, remaining: np.ndarray, remaining_code: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(feasible allocations, option CDF) for one DP state.

        The option weights are the same ``exp(logs - logs.max())`` vector
        the v1 pass hands to ``Generator.choice``; the CDF is its cumsum,
        consumed by scaling a uniform with ``cdf[-1]`` (no normalize).
        """
        self._ensure_built()
        comps = self._col_comps[col_index]
        log_factors = self._col_log_factors[col_index]
        option_logs = np.full(comps.shape[0], -np.inf)
        if comps.shape[0]:
            feasible = (
                (comps <= remaining).all(axis=1)
                & self._col_finite[col_index]
            )
            if feasible.any():
                rest_codes = (
                    remaining_code - self._col_comp_codes[col_index][feasible]
                )
                tails = _lookup(
                    rest_codes,
                    self._layers[col_index + 1][1],
                    self._values[col_index + 1],
                )
                option_logs[feasible] = log_factors[feasible] + tails
        options = np.flatnonzero(np.isfinite(option_logs))
        if options.shape[0] == 0:
            raise MatchingError(
                f"dead end at column class {col_index}: "
                "no feasible allocation"
            )
        logs = option_logs[options]
        weights = np.exp(logs - logs.max())
        return comps[options], np.cumsum(weights)

    def sample_block(self, rng: np.random.Generator) -> np.ndarray:
        """The v2 contract: one uniform block, inverse-CDF per column.

        Consumes exactly one generator invocation per table draw. States
        resolve through the CDF memo, so a warm (or seeded) evaluator
        runs no feasibility masking, no ``exp``, and no DP lookups.
        """
        strides = self._strides
        num_cols = len(self._b)
        uniforms = rng.random(num_cols)
        remaining_code = self._root_code
        remaining = None  # materialized lazily, only for memo misses
        table = np.zeros((len(self._a), num_cols), dtype=np.int64)
        for col_index in range(num_cols):
            key = (col_index, remaining_code)
            entry = self._cdf_memo.get(key)
            if entry is None:
                if remaining is None:
                    remaining = self._a_arr - table[:, :col_index].sum(axis=1)
                entry = self._state_cdf(col_index, remaining, remaining_code)
                self._cdf_memo[key] = entry
                self.cdf_memo_dirty = True
            allocations, cdf = entry
            choice = int(
                cdf.searchsorted(uniforms[col_index] * cdf[-1], "right")
            )
            choice = min(choice, allocations.shape[0] - 1)
            allocation = allocations[choice]
            table[:, col_index] = allocation
            remaining_code -= int(allocation @ strides)
            if remaining is not None:
                remaining = remaining - allocation
        return table

    def export_cdf_entries(
        self,
    ) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
        """The CDF memo for persistence (shallow copies of the arrays)."""
        return dict(self._cdf_memo)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        self._ensure_built()
        # One allocation draw per column class, options indexed in
        # composition-enumeration order (same order as the reference DP).
        # Integer arithmetic throughout, so tracking `remaining` as an
        # int64 vector (instead of a tuple rebuilt per column) changes
        # no values; the option log-probabilities are bit-identical.
        a = self._a
        strides = self._strides
        remaining = self._a_arr.copy()
        remaining_code = int(self._a_arr @ strides)
        table = np.zeros((len(a), len(self._b)), dtype=np.int64)
        for col_index in range(len(self._b)):
            comps = self._col_comps[col_index]
            log_factors = self._col_log_factors[col_index]
            option_logs = np.full(comps.shape[0], -np.inf)
            if comps.shape[0]:
                feasible = (
                    (comps <= remaining).all(axis=1)
                    & self._col_finite[col_index]
                )
                if feasible.any():
                    rest_codes = (
                        remaining_code
                        - self._col_comp_codes[col_index][feasible]
                    )
                    tails = _lookup(
                        rest_codes,
                        self._layers[col_index + 1][1],
                        self._values[col_index + 1],
                    )
                    option_logs[feasible] = log_factors[feasible] + tails
            options = np.flatnonzero(np.isfinite(option_logs))
            if options.shape[0] == 0:
                raise MatchingError(
                    f"dead end at column class {col_index}: "
                    "no feasible allocation"
                )
            logs = option_logs[options]
            probabilities = np.exp(logs - logs.max())
            probabilities = probabilities / probabilities.sum()
            choice = int(rng.choice(options.shape[0], p=probabilities))
            allocation = comps[options[choice]]
            table[:, col_index] = allocation
            remaining -= allocation
            remaining_code -= int(allocation @ strides)
        return table


def _lookup(
    codes: np.ndarray, layer_codes: np.ndarray, layer_values: np.ndarray
) -> np.ndarray:
    """Values of encoded states in a sorted layer; -inf when absent."""
    if layer_codes.shape[0] == 0:
        return np.full(codes.shape, -np.inf)
    index = np.searchsorted(layer_codes, codes)
    index = np.minimum(index, layer_codes.shape[0] - 1)
    found = layer_codes[index] == codes
    return np.where(found, layer_values[index], -np.inf)


def prepare_contingency_dp(
    instance: ClassifiedBipartite,
    *,
    implementation: str = "auto",
    comp_memo: dict | None = None,
):
    """Build the deterministic half of the contingency DP for reuse.

    Returns a prepared evaluator with ``sample(rng) -> table`` and a
    ``consumes_rng`` flag. The forward/backward (or recursive suffix)
    passes are functions of the instance alone -- no randomness touches
    them -- so one build can serve every future draw against an equal
    (counts, weights) instance; that reuse is the core of the batched
    placement engine (see :class:`repro.core.placement_plan.PlacementPlan`).

    ``implementation`` dispatch matches :func:`sample_contingency_table`:
    ``"auto"`` picks closed form / pure Python / layered numpy by
    instance shape, ``"vectorized"`` and ``"reference"`` pin an
    evaluator. A state space too large to encode in int64 falls back to
    the reference recursion, which only materializes reachable states
    lazily -- checked *before* enumerating per-column composition
    tables, whose size grows with the same combinatorics. ``comp_memo``
    optionally shares a plan-scope composition memo between reference
    builds.
    """
    if implementation == "auto":
        trivial = _trivial_table(instance)
        if trivial is not None:
            return _PreparedTrivial(trivial)
        if instance.size <= _SMALL_INSTANCE_SIZE:
            return _PreparedReference(instance, comp_memo)
    elif implementation == "reference":
        return _PreparedReference(instance, comp_memo)
    elif implementation != "vectorized":
        raise MatchingError(
            f"unknown contingency DP implementation {implementation!r}"
        )
    state_space = 1
    for count in instance.row_counts:
        state_space *= int(count) + 1
    if state_space >= (1 << 62):
        return _PreparedReference(instance, comp_memo)
    return _PreparedVectorized(instance)


def restore_prepared_vectorized(
    instance: ClassifiedBipartite,
    entries: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]],
    *,
    implementation: str = "auto",
):
    """A build-deferred vectorized evaluator seeded from persisted CDFs.

    Returns ``None`` whenever :func:`prepare_contingency_dp` would
    dispatch ``instance`` to a different evaluator (trivial closed form,
    the small-instance reference DP, or the int64 radix-overflow
    fallback) -- the caller then builds normally. Otherwise the returned
    evaluator serves ``sample_block`` straight from the seeded memo and
    only runs the forward/backward passes on a state miss (or a v1
    ``sample`` call), which is what makes a restart's first warm draw
    cheap.
    """
    if implementation not in ("auto", "vectorized"):
        return None
    if implementation == "auto":
        if _trivial_table(instance) is not None:
            return None
        if instance.size <= _SMALL_INSTANCE_SIZE:
            return None
    state_space = 1
    for count in instance.row_counts:
        state_space *= int(count) + 1
    if state_space >= (1 << 62):
        return None
    return _PreparedVectorized.from_cdf_seed(instance, entries)


def sample_contingency_table(
    instance: ClassifiedBipartite,
    rng: np.random.Generator | None = None,
    *,
    implementation: str = "auto",
) -> np.ndarray:
    """Exactly sample the class-contingency table of a weighted matching.

    The matching distribution marginalizes to tables T with
    ``P(T) prop to prod_{r,c} w[r,c]^{T[r,c]} / T[r,c]!`` subject to the
    row/column sum constraints (see permanent_class_dp). We sample column
    class by column class: allocation k for column c is drawn with
    probability proportional to

        prod_r w[r,c]^{k_r} / k_r!  *  Z(c + 1, remaining - k)

    where Z is the memoized suffix partition function.

    ``implementation`` selects the evaluator -- all sample the same law:

    - ``"auto"`` (default): closed form for single-row/column instances,
      the pure-Python recursion for small general instances, and the
      layered numpy DP for everything else (numpy overhead beats Python
      only once instances carry roughly > 6 midpoints);
    - ``"vectorized"``: always the layered numpy DP;
    - ``"reference"``: always the original pure-Python DP (seed-faithful
      baseline for benchmarks and cross-validation).

    One-shot convenience over :func:`prepare_contingency_dp` + sample;
    batch workloads keep the prepared object and sample it repeatedly.
    """
    prepared = prepare_contingency_dp(instance, implementation=implementation)
    if not prepared.consumes_rng:
        return prepared.sample()
    return prepared.sample(np.random.default_rng(rng))


def _sample_contingency_table_reference(
    instance: ClassifiedBipartite, rng: np.random.Generator | None = None
) -> np.ndarray:
    """The original pure-Python contingency DP (cross-validation baseline).

    Identical law and option ordering to the vectorized default; kept so
    tests can A/B the two evaluators and so throughput benchmarks can
    measure the seed implementation's wall-clock faithfully (the suffix
    memo is built fresh per call, exactly like the seed's lru_cache).
    """
    rng = np.random.default_rng(rng)
    return _PreparedReference(instance).sample(rng)


def _log_allocation_factor(
    weights: np.ndarray, col_index: int, allocation: Sequence[int]
) -> float:
    """``log prod_r w[r, c]^{k_r} / k_r!``; -inf when infeasible."""
    log_factor = 0.0
    for r, k in enumerate(allocation):
        if k == 0:
            continue
        w = float(weights[r, col_index])
        if w <= 0.0:
            return -math.inf
        log_factor += k * math.log(w) - math.lgamma(k + 1)
    return log_factor


def _logsumexp(terms: list[float]) -> float:
    """Stable log(sum(exp(terms))); -inf for an empty list."""
    if not terms:
        return -math.inf
    peak = max(terms)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(t - peak) for t in terms))


def expand_table_to_assignment(
    instance: ClassifiedBipartite,
    table: np.ndarray,
    rng: np.random.Generator | None = None,
    *,
    rng_contract: str = "v1",
) -> list[list[Hashable]]:
    """Turn a contingency table into per-column-class label sequences.

    For each column class c, the incoming row labels (label r with
    multiplicity ``table[r, c]``) are arranged in a uniformly random order
    across that class's positions -- the conditional law of the matching
    given its table is exactly uniform over such arrangements.

    ``rng_contract`` selects how that uniform order is drawn: ``"v1"``
    makes one ``Generator.permutation`` call per column class (the
    seed-faithful path); ``"v2"`` draws ONE uniform block covering every
    position and sorts each column's slice (iid uniform keys have almost
    surely distinct values, so their argsort is a uniform permutation) --
    a single generator invocation regardless of the column-class count.

    Returns ``assignment`` where ``assignment[c]`` is the length-
    ``col_counts[c]`` list of row labels, in position order.
    """
    rng = np.random.default_rng(rng)
    table = np.asarray(table)
    row_labels = instance.row_labels
    num_rows = table.shape[0]
    num_cols = table.shape[1]
    col_counts = np.asarray(instance.col_counts, dtype=np.int64)
    col_sums = table.sum(axis=0).astype(np.int64)
    bad = np.nonzero(col_sums != col_counts)[0]
    if bad.size:
        c = int(bad[0])
        raise MatchingError(
            f"table column {c} sums to {int(col_sums[c])}, "
            f"expected {int(col_counts[c])}"
        )
    # Row-class index of every position, columns concatenated in order
    # (identical to the label list the per-row extend loop used to build).
    class_of_slot = np.repeat(
        np.tile(np.arange(num_rows), num_cols), table.T.reshape(-1)
    )
    starts = np.concatenate(([0], np.cumsum(col_counts)))
    if rng_contract == "v2":
        block = rng.random(int(starts[-1]))
        col_of_slot = np.repeat(np.arange(num_cols), col_counts)
        # One stable sort by (column, key) orders every column at once:
        # within a column it is exactly the argsort of its block slice
        # (iid uniform keys are a.s. distinct, so any correct sort gives
        # the same permutation the per-column argsort did).
        ordered = class_of_slot[np.lexsort((block, col_of_slot))]
        return [
            [row_labels[k] for k in ordered[starts[c]:starts[c + 1]]]
            for c in range(num_cols)
        ]
    # v1 draws one Generator.permutation per column class; the stream
    # position of each draw is the contract, so this loop stays.
    assignment: list[list[Hashable]] = []
    for c in range(num_cols):
        classes = class_of_slot[starts[c]:starts[c + 1]]
        order = rng.permutation(int(col_counts[c]))
        assignment.append([row_labels[classes[i]] for i in order])
    return assignment


def sample_assignment_by_classes(
    instance: ClassifiedBipartite,
    rng: np.random.Generator | None = None,
    *,
    implementation: str = "auto",
) -> list[list[Hashable]]:
    """Exact weight-proportional matching sample, returned per column class.

    Composition of :func:`sample_contingency_table` and
    :func:`expand_table_to_assignment`: distributionally identical to
    sampling a perfect matching of the expanded bipartite graph with
    probability proportional to its weight, but in time polynomial in the
    number of classes. ``implementation`` is forwarded to the contingency
    DP (``"auto"``, ``"vectorized"``, or ``"reference"``).
    """
    rng = np.random.default_rng(rng)
    table = sample_contingency_table(instance, rng, implementation=implementation)
    return expand_table_to_assignment(instance, table, rng)
