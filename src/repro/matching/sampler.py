"""Samplers for weight-proportional perfect matchings (Section 2.1.3).

The walk-reconstruction bipartite graph B joins the midpoint multiset M'
to the midpoint positions P', with the weight of edge (x, y) equal to
``P^{delta/2}[p, x] * P^{delta/2}[x, q]`` when position y lies between the
start-end pair (p, q). We must sample a perfect matching of B with
probability proportional to the product of its edge weights (Lemma 3).

Because the weight depends only on x's identity and y's pair, B's rows and
columns fall into classes, and the matching distribution factorizes through
a contingency table. :func:`sample_contingency_table` samples that table
*exactly* by DP (same recursion as
:func:`repro.matching.permanent.permanent_class_dp`), and
:func:`expand_table_to_assignment` turns the table into a concrete
assignment by uniform multiset permutations -- together an exact (TV error
0) replacement for the paper's JSV + JVV pipeline. The general-purpose
:func:`sample_matching_exact` (self-reducible Ryser) and
:func:`sample_matching_mcmc` (Metropolis) are provided for validation and
for the approximate-sampler code path of Lemma 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Sequence

import numpy as np

from repro.errors import MatchingError
from repro.matching.permanent import (
    _compositions,
    compositions_array,
    permanent_ryser,
)

__all__ = [
    "ClassifiedBipartite",
    "sample_matching_exact",
    "sample_matching_mcmc",
    "sample_contingency_table",
    "expand_table_to_assignment",
    "sample_assignment_by_classes",
]


def sample_matching_exact(
    weights: np.ndarray, rng: np.random.Generator | None = None
) -> list[int]:
    """Exactly sample a permutation sigma with P(sigma) prop to prod w[i, sigma(i)].

    Self-reducible sampling: match row 0 to column j with probability
    ``w[0, j] * perm(minor_{0 j}) / perm(w)`` and recurse on the minor.
    Cost: O(n) permanent evaluations of decreasing size -- fine for the
    n <= ~12 instances used in validation.

    Returns ``assignment`` with ``assignment[i] = sigma(i)``.
    """
    rng = np.random.default_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise MatchingError(f"need a square weight matrix, got {w.shape}")
    n = w.shape[0]
    remaining_cols = list(range(n))
    assignment: list[int] = []
    current = w
    for _ in range(n):
        total = permanent_ryser(current)
        if total <= 0:
            raise MatchingError(
                "bipartite instance admits no positive-weight perfect matching"
            )
        probabilities = np.empty(current.shape[1])
        for j in range(current.shape[1]):
            minor = np.delete(np.delete(current, 0, axis=0), j, axis=1)
            probabilities[j] = current[0, j] * permanent_ryser(minor)
        probabilities = np.clip(probabilities, 0.0, None)
        norm = probabilities.sum()
        if norm <= 0:
            raise MatchingError("row has no extensible column choice")
        choice = int(rng.choice(len(probabilities), p=probabilities / norm))
        assignment.append(remaining_cols[choice])
        remaining_cols.pop(choice)
        current = np.delete(np.delete(current, 0, axis=0), choice, axis=1)
    return assignment


def sample_matching_mcmc(
    weights: np.ndarray,
    *,
    steps: int | None = None,
    rng: np.random.Generator | None = None,
    initial: Sequence[int] | None = None,
) -> list[int]:
    """Metropolis chain over permutations targeting P(sigma) prop to prod w.

    Proposal: a uniformly random transposition of two positions; acceptance
    ``min(1, ratio)`` with the 4-entry weight ratio. This is the
    polynomial-time *approximate* sampler exercising Lemma 4's TV-error
    analysis (the JSV/JVV pipeline stand-in; see DESIGN.md). ``steps``
    defaults to ``10 * n^3`` proposals capped at 100k -- placement
    instances can reach hundreds of midpoints, where the uncapped cubic
    budget would dominate the whole pipeline while the transposition
    chain on such dense-weight instances mixes long before the cap.
    Zero-weight entries are handled by
    rejecting moves into weight-0 configurations (the chain must start at a
    positive-weight permutation; the identity is used unless ``initial`` is
    given).
    """
    rng = np.random.default_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise MatchingError(f"need a square weight matrix, got {w.shape}")
    n = w.shape[0]
    if n == 0:
        return []
    if steps is None:
        steps = max(100, min(10 * n**3, 100_000))
    sigma = list(range(n)) if initial is None else list(initial)
    if sorted(sigma) != list(range(n)):
        raise MatchingError("initial state must be a permutation")
    current = np.array([w[i, sigma[i]] for i in range(n)])
    if np.any(current <= 0):
        raise MatchingError(
            "initial permutation has zero weight; provide a feasible start"
        )
    for _ in range(steps):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        new_i, new_j = w[i, sigma[j]], w[j, sigma[i]]
        if new_i <= 0 or new_j <= 0:
            continue
        ratio = (new_i * new_j) / (current[i] * current[j])
        if ratio >= 1.0 or rng.random() < ratio:
            sigma[i], sigma[j] = sigma[j], sigma[i]
            current[i], current[j] = new_i, new_j
    return sigma


# ---------------------------------------------------------------------------
# Class-structured exact sampling (the library default)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassifiedBipartite:
    """A bipartite matching instance with class-compressed sides.

    Attributes
    ----------
    row_labels:
        One label per row class (e.g. midpoint vertex IDs).
    row_counts:
        Multiplicity of each row class (how many copies of that midpoint
        are in the multiset M').
    col_labels:
        One label per column class (e.g. start-end pairs (p, q)).
    col_counts:
        Multiplicity of each column class (how many positions share that
        pair).
    class_weights:
        ``(R, C)`` weights: w[r, c] is the weight of matching a class-r
        row to a class-c column.
    """

    row_labels: tuple[Hashable, ...]
    row_counts: tuple[int, ...]
    col_labels: tuple[Hashable, ...]
    col_counts: tuple[int, ...]
    class_weights: np.ndarray

    def __post_init__(self) -> None:
        r, c = len(self.row_labels), len(self.col_labels)
        if len(self.row_counts) != r or len(self.col_counts) != c:
            raise MatchingError("label/count length mismatch")
        if self.class_weights.shape != (r, c):
            raise MatchingError(
                f"class weight shape {self.class_weights.shape} != ({r}, {c})"
            )
        if sum(self.row_counts) != sum(self.col_counts):
            raise MatchingError(
                f"unbalanced instance: {sum(self.row_counts)} rows vs "
                f"{sum(self.col_counts)} columns"
            )
        if any(k < 0 for k in self.row_counts + self.col_counts):
            raise MatchingError("class counts must be non-negative")
        if np.any(np.asarray(self.class_weights) < 0):
            raise MatchingError("matching weights must be non-negative")

    @property
    def size(self) -> int:
        """Number of rows (= columns) of the expanded instance."""
        return sum(self.row_counts)

    def expanded_weights(self) -> np.ndarray:
        """The full (size x size) weight matrix, for validation only."""
        rows = np.repeat(np.arange(len(self.row_counts)), self.row_counts)
        cols = np.repeat(np.arange(len(self.col_counts)), self.col_counts)
        return np.asarray(self.class_weights)[np.ix_(rows, cols)]


_SMALL_INSTANCE_SIZE = 6


def _trivial_table(instance: ClassifiedBipartite) -> np.ndarray | None:
    """Closed-form table for single-row/column instances (one atom law).

    With one column class every row multiset lands in it; with one row
    class every column receives that class. Either way the contingency
    table is forced, so no DP or randomness is needed -- only the
    positive-weight feasibility check.
    """
    a = instance.row_counts
    b = instance.col_counts
    weights = np.asarray(instance.class_weights, dtype=np.float64)
    if len(b) == 1:
        for r, count in enumerate(a):
            if count > 0 and weights[r, 0] <= 0.0:
                raise MatchingError(
                    "instance admits no positive-weight perfect matching "
                    "(class permanent is zero)"
                )
        return np.asarray(a, dtype=np.int64).reshape(len(a), 1)
    if len(a) == 1:
        for c, count in enumerate(b):
            if count > 0 and weights[0, c] <= 0.0:
                raise MatchingError(
                    "instance admits no positive-weight perfect matching "
                    "(class permanent is zero)"
                )
        return np.asarray(b, dtype=np.int64).reshape(1, len(b))
    return None


def sample_contingency_table(
    instance: ClassifiedBipartite,
    rng: np.random.Generator | None = None,
    *,
    implementation: str = "auto",
) -> np.ndarray:
    """Exactly sample the class-contingency table of a weighted matching.

    The matching distribution marginalizes to tables T with
    ``P(T) prop to prod_{r,c} w[r,c]^{T[r,c]} / T[r,c]!`` subject to the
    row/column sum constraints (see permanent_class_dp). We sample column
    class by column class: allocation k for column c is drawn with
    probability proportional to

        prod_r w[r,c]^{k_r} / k_r!  *  Z(c + 1, remaining - k)

    where Z is the memoized suffix partition function.

    ``implementation`` selects the evaluator -- all sample the same law:

    - ``"auto"`` (default): closed form for single-row/column instances,
      the pure-Python recursion for small general instances, and the
      layered numpy DP for everything else (numpy overhead beats Python
      only once instances carry roughly > 6 midpoints);
    - ``"vectorized"``: always the layered numpy DP;
    - ``"reference"``: always the original pure-Python DP (seed-faithful
      baseline for benchmarks and cross-validation).
    """
    if implementation == "auto":
        trivial = _trivial_table(instance)
        if trivial is not None:
            return trivial
        if instance.size <= _SMALL_INSTANCE_SIZE:
            return _sample_contingency_table_reference(instance, rng)
    elif implementation == "reference":
        return _sample_contingency_table_reference(instance, rng)
    elif implementation != "vectorized":
        raise MatchingError(
            f"unknown contingency DP implementation {implementation!r}"
        )
    rng = np.random.default_rng(rng)
    weights = np.asarray(instance.class_weights, dtype=np.float64)
    a = tuple(int(k) for k in instance.row_counts)
    b = tuple(int(k) for k in instance.col_counts)
    num_rows = len(a)
    num_cols = len(b)

    # Everything value-dependent is precomputed once per call: log weights
    # (zero weights masked, handled via feasibility tests so 0 * -inf never
    # appears), a factorial table for the 1/k! terms, and -- the hot part --
    # one composition table per column, capped at the *full* row counts.
    # Any state's options {k : sum k = b_c, k <= remaining} are the
    # order-preserving subset of that table with k <= remaining, so each
    # state costs one vectorized comparison instead of a fresh enumeration.
    # States (remaining row-count vectors) are encoded in a mixed radix so
    # layers can be deduplicated, sorted, and joined with searchsorted. A
    # state space too large to encode in int64 falls back to the reference
    # recursion, which only materializes reachable states lazily -- checked
    # *before* enumerating per-column composition tables, whose size grows
    # with the same combinatorics.
    state_space = 1
    for count in a:
        state_space *= count + 1
    if state_space >= (1 << 62):
        return _sample_contingency_table_reference(instance, rng)

    positive = weights > 0.0
    with np.errstate(divide="ignore"):
        log_weights = np.where(positive, np.log(np.where(positive, weights, 1.0)), 0.0)
    max_count = max(a, default=0)
    lgamma_table = np.array([math.lgamma(k + 1) for k in range(max_count + 1)])

    col_comps: list[np.ndarray] = []
    col_log_factors: list[np.ndarray] = []
    for c in range(num_cols):
        caps = tuple(min(r, b[c]) for r in a)
        comps = compositions_array(b[c], caps)
        if comps.shape[0] == 0:
            log_factors = np.empty(0)
        else:
            log_factors = (
                comps @ log_weights[:, c] - lgamma_table[comps].sum(axis=1)
            )
            blocked = ~positive[:, c]
            if blocked.any():
                infeasible = (comps[:, blocked] > 0).any(axis=1)
                log_factors = np.where(infeasible, -np.inf, log_factors)
        col_comps.append(comps)
        col_log_factors.append(log_factors)

    a_arr = np.asarray(a, dtype=np.int64)
    strides = np.empty(num_rows, dtype=np.int64)
    acc = 1
    for r in range(num_rows - 1, -1, -1):
        strides[r] = acc
        acc *= a[r] + 1

    def _finite_columns(col_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Allocations with a finite weight factor (the only contributors)."""
        finite = np.isfinite(col_log_factors[col_index])
        return col_comps[col_index][finite], col_log_factors[col_index][finite]

    def _lookup(
        codes: np.ndarray, layer_codes: np.ndarray, layer_values: np.ndarray
    ) -> np.ndarray:
        """Values of encoded states in a sorted layer; -inf when absent."""
        if layer_codes.shape[0] == 0:
            return np.full(codes.shape, -np.inf)
        index = np.searchsorted(layer_codes, codes)
        index = np.minimum(index, layer_codes.shape[0] - 1)
        found = layer_codes[index] == codes
        return np.where(found, layer_values[index], -np.inf)

    # Forward pass: reachable states after each column's allocation.
    _BLOCK_ELEMENTS = 4_000_000
    layers: list[tuple[np.ndarray, np.ndarray]] = []
    states = a_arr.reshape(1, num_rows)
    layers.append((states, states @ strides))
    for c in range(num_cols):
        comps_f, __ = _finite_columns(c)
        states = layers[-1][0]
        rest_blocks: list[np.ndarray] = []
        if comps_f.shape[0] and states.shape[0]:
            block = max(1, _BLOCK_ELEMENTS // (comps_f.shape[0] * num_rows + 1))
            for lo in range(0, states.shape[0], block):
                chunk = states[lo:lo + block]
                feasible = (comps_f[None, :, :] <= chunk[:, None, :]).all(axis=2)
                rest_blocks.append(
                    (chunk[:, None, :] - comps_f[None, :, :])[feasible]
                )
        if rest_blocks:
            rests = np.concatenate(rest_blocks, axis=0)
        else:
            rests = np.empty((0, num_rows), dtype=np.int64)
        codes = rests @ strides
        codes, first = np.unique(codes, return_index=True)
        layers.append((rests[first], codes))

    # Backward pass: log partition values per layer (the log_suffix DP,
    # vectorized over whole (state, allocation) blocks at once).
    values: list[np.ndarray | None] = [None] * (num_cols + 1)
    final_codes = layers[num_cols][1]
    values[num_cols] = np.where(final_codes == 0, 0.0, -np.inf)
    for c in range(num_cols - 1, -1, -1):
        states, codes = layers[c]
        comps_f, log_factors_f = _finite_columns(c)
        level = np.full(states.shape[0], -np.inf)
        if comps_f.shape[0] and states.shape[0]:
            next_codes = layers[c + 1][1]
            next_values = values[c + 1]
            comp_codes = comps_f @ strides
            block = max(1, _BLOCK_ELEMENTS // (comps_f.shape[0] * num_rows + 1))
            for lo in range(0, states.shape[0], block):
                chunk = states[lo:lo + block]
                feasible = (comps_f[None, :, :] <= chunk[:, None, :]).all(axis=2)
                rest_codes = codes[lo:lo + block, None] - comp_codes[None, :]
                tails = _lookup(rest_codes, next_codes, next_values)
                totals = np.where(
                    feasible & np.isfinite(tails),
                    log_factors_f[None, :] + tails,
                    -np.inf,
                )
                peak = totals.max(axis=1)
                live = peak > -np.inf
                if live.any():
                    shifted = np.exp(totals[live] - peak[live, None])
                    level[lo:lo + block][live] = (
                        peak[live] + np.log(shifted.sum(axis=1))
                    )
        values[c] = level

    if values[0][0] == -math.inf:
        raise MatchingError(
            "instance admits no positive-weight perfect matching "
            "(class permanent is zero)"
        )

    # Sampling pass: one allocation draw per column class, options indexed
    # in composition-enumeration order (same order as the reference DP).
    remaining = a
    remaining_code = int(a_arr @ strides)
    table = np.zeros((num_rows, num_cols), dtype=np.int64)
    for col_index in range(num_cols):
        comps = col_comps[col_index]
        log_factors = col_log_factors[col_index]
        option_logs = np.full(comps.shape[0], -np.inf)
        if comps.shape[0]:
            remaining_arr = np.asarray(remaining, dtype=np.int64)
            feasible = (
                (comps <= remaining_arr).all(axis=1) & np.isfinite(log_factors)
            )
            if feasible.any():
                rest_codes = remaining_code - (comps[feasible] @ strides)
                tails = _lookup(
                    rest_codes, layers[col_index + 1][1], values[col_index + 1]
                )
                option_logs[feasible] = log_factors[feasible] + tails
        options = np.flatnonzero(np.isfinite(option_logs))
        if options.shape[0] == 0:
            raise MatchingError(
                f"dead end at column class {col_index}: no feasible allocation"
            )
        logs = option_logs[options]
        probabilities = np.exp(logs - logs.max())
        probabilities = probabilities / probabilities.sum()
        choice = int(rng.choice(options.shape[0], p=probabilities))
        allocation = comps[options[choice]]
        table[:, col_index] = allocation
        remaining = tuple(
            int(r) - int(k) for r, k in zip(remaining, allocation)
        )
        remaining_code -= int(allocation @ strides)
    return table


def _sample_contingency_table_reference(
    instance: ClassifiedBipartite, rng: np.random.Generator | None = None
) -> np.ndarray:
    """The original pure-Python contingency DP (cross-validation baseline).

    Identical law and option ordering to the vectorized default; kept so
    tests can A/B the two evaluators and so throughput benchmarks can
    measure the seed implementation's wall-clock faithfully.
    """
    rng = np.random.default_rng(rng)
    weights = np.asarray(instance.class_weights, dtype=np.float64)
    a = tuple(instance.row_counts)
    b = tuple(instance.col_counts)
    num_rows = len(a)

    # The whole DP runs in log space: per-phase walks can assign hundreds
    # of midpoints to one class, making w^k / k! underflow or overflow any
    # linear-scale evaluation.

    @lru_cache(maxsize=None)
    def log_suffix(col_index: int, remaining: tuple[int, ...]) -> float:
        if col_index == len(b):
            return 0.0 if all(x == 0 for x in remaining) else -math.inf
        terms: list[float] = []
        for allocation in _compositions(b[col_index], remaining):
            log_factor = _log_allocation_factor(weights, col_index, allocation)
            if log_factor == -math.inf:
                continue
            rest = tuple(remaining[r] - allocation[r] for r in range(num_rows))
            tail = log_suffix(col_index + 1, rest)
            if tail == -math.inf:
                continue
            terms.append(log_factor + tail)
        return _logsumexp(terms)

    remaining = a
    table = np.zeros((num_rows, len(b)), dtype=np.int64)
    if log_suffix(0, remaining) == -math.inf:
        log_suffix.cache_clear()
        raise MatchingError(
            "instance admits no positive-weight perfect matching "
            "(class permanent is zero)"
        )
    for col_index in range(len(b)):
        options = []
        option_logs = []
        for allocation in _compositions(b[col_index], remaining):
            log_factor = _log_allocation_factor(weights, col_index, allocation)
            if log_factor == -math.inf:
                continue
            rest = tuple(remaining[r] - allocation[r] for r in range(num_rows))
            tail = log_suffix(col_index + 1, rest)
            if tail == -math.inf:
                continue
            options.append(allocation)
            option_logs.append(log_factor + tail)
        if not options:
            log_suffix.cache_clear()
            raise MatchingError(
                f"dead end at column class {col_index}: no feasible allocation"
            )
        logs = np.asarray(option_logs)
        probabilities = np.exp(logs - logs.max())
        probabilities = probabilities / probabilities.sum()
        choice = int(rng.choice(len(options), p=probabilities))
        allocation = options[choice]
        table[:, col_index] = allocation
        remaining = tuple(remaining[r] - allocation[r] for r in range(num_rows))
    log_suffix.cache_clear()
    return table


def _log_allocation_factor(
    weights: np.ndarray, col_index: int, allocation: Sequence[int]
) -> float:
    """``log prod_r w[r, c]^{k_r} / k_r!``; -inf when infeasible."""
    log_factor = 0.0
    for r, k in enumerate(allocation):
        if k == 0:
            continue
        w = float(weights[r, col_index])
        if w <= 0.0:
            return -math.inf
        log_factor += k * math.log(w) - math.lgamma(k + 1)
    return log_factor


def _logsumexp(terms: list[float]) -> float:
    """Stable log(sum(exp(terms))); -inf for an empty list."""
    if not terms:
        return -math.inf
    peak = max(terms)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(t - peak) for t in terms))


def expand_table_to_assignment(
    instance: ClassifiedBipartite,
    table: np.ndarray,
    rng: np.random.Generator | None = None,
) -> list[list[Hashable]]:
    """Turn a contingency table into per-column-class label sequences.

    For each column class c, the incoming row labels (label r with
    multiplicity ``table[r, c]``) are arranged in a uniformly random order
    across that class's positions -- the conditional law of the matching
    given its table is exactly uniform over such arrangements.

    Returns ``assignment`` where ``assignment[c]`` is the length-
    ``col_counts[c]`` list of row labels, in position order.
    """
    rng = np.random.default_rng(rng)
    table = np.asarray(table)
    assignment: list[list[Hashable]] = []
    for c, count in enumerate(instance.col_counts):
        if int(table[:, c].sum()) != count:
            raise MatchingError(
                f"table column {c} sums to {int(table[:, c].sum())}, "
                f"expected {count}"
            )
        labels: list[Hashable] = []
        for r, multiplicity in enumerate(table[:, c]):
            labels.extend([instance.row_labels[r]] * int(multiplicity))
        order = rng.permutation(len(labels))
        assignment.append([labels[i] for i in order])
    return assignment


def sample_assignment_by_classes(
    instance: ClassifiedBipartite,
    rng: np.random.Generator | None = None,
    *,
    implementation: str = "auto",
) -> list[list[Hashable]]:
    """Exact weight-proportional matching sample, returned per column class.

    Composition of :func:`sample_contingency_table` and
    :func:`expand_table_to_assignment`: distributionally identical to
    sampling a perfect matching of the expanded bipartite graph with
    probability proportional to its weight, but in time polynomial in the
    number of classes. ``implementation`` is forwarded to the contingency
    DP (``"auto"``, ``"vectorized"``, or ``"reference"``).
    """
    rng = np.random.default_rng(rng)
    table = sample_contingency_table(instance, rng, implementation=implementation)
    return expand_table_to_assignment(instance, table, rng)
