"""Command-line interface: thin adapters over the session API.

Usage (installed as ``python -m repro``)::

    python -m repro sample --family expander --n 32 --variant approximate
    python -m repro sample --family lollipop --n 24 --variant exact --seed 7
    python -m repro sample --family cycle --n 512 --linalg-backend sparse
    python -m repro rounds --family gnp --n 48
    python -m repro ensemble --family expander --n 32 --samples 200 --jobs 4
    python -m repro families --json
    python -m repro --version

Every subcommand follows the same shape: parse args, build the graph
from the shared family registry (:mod:`repro.graphs.families`), build a
frozen request, execute it through :class:`repro.api.Session`, and
render the uniform :class:`~repro.api.responses.Response` envelope --
as human-readable text by default, or as the envelope's JSON wire form
with ``--json`` (loadable back into typed results via
:func:`repro.api.response_from_dict`).

Families that cannot realize the requested vertex count exactly (a
4-regular expander needs even ``n``) surface the substitution in both
renderings instead of silently bumping the size; see
``response.meta["size_adjusted"]``.

Subcommands:

``sample``
    Draw one spanning tree with the chosen sampler variant and print the
    edge list plus phase/round diagnostics.
``rounds``
    Run every registered sampler variant on one graph and print a
    round-bill comparison (the quickstart's table, scriptable); the
    broadcast row is Broadcast Congested Clique rounds, a different
    bandwidth regime from the unicast rows.
``pagerank``
    Walk-based PageRank estimate vs the exact solve.
``mst``
    Minimum spanning forest over seeded random edge weights, billed
    under a registered congested-clique recipe and gated against the
    sequential Kruskal oracle before anything is printed.
``ensemble``
    Draw a batch of trees through the ensemble engine (per-draw spawned
    seeds, ``--jobs`` process fan-out) and report throughput plus the
    leverage-score marginal audit.
``audit``
    Uniformity audit against exact enumeration (engine-backed batch).
``calibrate``
    Fit this machine's sparse/dense numerics crossover with a short
    timed probe and persist it next to the tiered derived-graph store
    (``--cache-dir``, default ``auto``); ``auto`` backend resolution
    consults the persisted profile from then on.
``cache``
    Inspect or maintain a persistent derived-graph cache directory:
    show entry/byte stats, ``--prune-to BYTES`` (LRU eviction down to a
    budget), ``--prune-expired DAYS`` (TTL expiry of untouched entries),
    or ``--clear`` it entirely.
``serve``
    Run the stdlib HTTP sampling service (:mod:`repro.service`): batch
    ``POST /v1/run``, NDJSON streaming ``POST /v1/stream``, admission
    control past ``--max-inflight`` (429 + Retry-After), per-request
    budgets, and graceful SIGTERM drain. ``--port 0`` binds an
    ephemeral port and reports it on stdout.
``families``
    List the available graph families (``--json`` for the machine-
    readable registry).
``verify``
    Run the installation self-check battery.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import numpy as np

from repro.api import (
    AuditRequest,
    EnsembleRequest,
    MSTRequest,
    PageRankRequest,
    Response,
    RoundBillRequest,
    SampleRequest,
    Session,
    preset_config,
)
from repro.core.variants import ensemble_variant_names, sample_variant_names
from repro.core.workloads import get_workload
from repro.errors import ReproError
from repro.graphs.core import WeightedGraph
from repro.graphs.families import (
    FAMILY_REGISTRY,
    build_family,
    family_catalog,
    family_names,
)

__all__ = ["main", "build_graph", "FAMILIES"]

# Back-compat view of the shared registry (the pre-session CLI exposed a
# local name -> builder dict; scripts importing it keep working).
FAMILIES: dict[str, Callable[[int, np.random.Generator], WeightedGraph]] = {
    name: spec.build for name, spec in FAMILY_REGISTRY.items()
}


def build_graph(family: str, n: int, rng: np.random.Generator) -> WeightedGraph:
    """Instantiate a named family at (roughly) n vertices."""
    graph, _ = build_family(family, n, rng)
    return graph


def _open_session(args: argparse.Namespace, ell: int | None = None) -> Session:
    """Build the graph named by ``args`` and bind a session to it."""
    rng = np.random.default_rng(args.seed)
    graph, meta = build_family(args.family, args.n, rng)
    overrides: dict = {} if ell is None else {"ell": ell}
    if getattr(args, "linalg_backend", None) is not None:
        overrides["linalg_backend"] = args.linalg_backend
    if getattr(args, "cache_dir", None) is not None:
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "placement_mode", None) is not None:
        overrides["placement_mode"] = args.placement_mode
    if getattr(args, "rng_contract", None) is not None:
        overrides["rng_contract"] = args.rng_contract
    config = preset_config("fast-bench", **overrides)
    return Session(graph, config, seed=args.seed, meta=meta)


def _emit(
    response: Response,
    as_json: bool,
    render: Callable[[Response], None],
) -> int:
    """Render a response: JSON envelope or the human view."""
    if as_json:
        print(response.to_json())
    else:
        if response.meta.get("size_adjusted"):
            print(
                f"note: family {response.meta['family']!r} adjusted n "
                f"{response.meta['requested_n']} -> {response.meta['n']}"
            )
        render(response)
    return 0


def _add_linalg_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared numerics-backend override flag."""
    parser.add_argument(
        "--linalg-backend",
        dest="linalg_backend",
        default=None,
        choices=["auto", "dense", "sparse"],
        help="numerics realization: dense numpy, scipy CSR, or "
             "auto-select by graph size/density (default: auto)",
    )


def _add_cache_dir_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared persistent-cache-directory flag."""
    parser.add_argument(
        "--cache-dir",
        dest="cache_dir",
        default=None,
        metavar="DIR",
        help="persistent derived-graph store: spill phase numerics to "
             "DIR and warm-start from entries already there ('auto' = "
             "$REPRO_CACHE_DIR or ~/.cache/repro-spanning-trees)",
    )


def _add_placement_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared walk-layer placement-mode override flag."""
    parser.add_argument(
        "--placement-mode",
        dest="placement_mode",
        default=None,
        choices=["batched", "reference"],
        help="walk-layer placement: 'batched' shares per-phase "
             "classification and DP builds across draws (default), "
             "'reference' keeps the seed-faithful per-pair path; trees "
             "are byte-identical either way",
    )


def _add_rng_contract_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared RNG-contract override flag."""
    parser.add_argument(
        "--rng-contract",
        dest="rng_contract",
        default=None,
        choices=["v2", "v1"],
        help="randomness contract: 'v2' resolves decisions by block "
             "draws against plan CDFs (default; fastest), 'v1' keeps "
             "the per-decision stream that reproduces pre-v2 seeded "
             "trees; both sample the identical distribution",
    )


def _parse_byte_size(text: str) -> int:
    """Parse '500000', '256K', '1.5M', '2G' into bytes."""
    raw = text.strip()
    scale = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if raw and raw[-1].upper() in suffixes:
        scale = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a byte size: {text!r} (use e.g. 500000, 256K, 1.5M, 2G)"
        ) from None
    if not (0 <= value < float(1 << 62)):  # rejects inf/nan/negatives
        raise argparse.ArgumentTypeError(
            f"byte size must be a finite value >= 0: {text!r}"
        )
    return int(value * scale)


def _render_cache_line(meta: dict) -> str | None:
    """One compact human-readable line of tier counters, or None."""
    cache = meta.get("cache")
    if not cache:
        return None
    line = (
        f"  cache: {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses"
    )
    if "disk_hits" in cache:
        line += (
            f"; disk {cache['disk_hits']} hits, {cache.get('spills', 0)} "
            f"spills, {cache.get('disk_entries', 0)} entries "
            f"({cache.get('disk_bytes', 0) / 2**20:.1f} MB)"
        )
    return line


def _make_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spanning tree sampling in the simulated CongestedClique",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="draw one spanning tree")
    sample.add_argument("--family", default="expander", choices=family_names())
    sample.add_argument("--n", type=int, default=32)
    sample.add_argument(
        "--variant", default="approximate",
        choices=list(sample_variant_names()),
    )
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--ell", type=int, default=1 << 12,
                        help="nominal walk length (power of two)")
    sample.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _add_linalg_flag(sample)
    _add_cache_dir_flag(sample)
    _add_placement_flag(sample)
    _add_rng_contract_flag(sample)

    rounds = sub.add_parser("rounds", help="compare sampler round bills")
    rounds.add_argument("--family", default="expander", choices=family_names())
    rounds.add_argument("--n", type=int, default=32)
    rounds.add_argument("--seed", type=int, default=0)
    rounds.add_argument("--ell", type=int, default=1 << 12)
    rounds.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _add_linalg_flag(rounds)
    _add_cache_dir_flag(rounds)
    _add_placement_flag(rounds)
    _add_rng_contract_flag(rounds)

    pagerank = sub.add_parser(
        "pagerank", help="walk-based PageRank vs the exact solve"
    )
    pagerank.add_argument("--family", default="wheel", choices=family_names())
    pagerank.add_argument("--n", type=int, default=32)
    pagerank.add_argument("--damping", type=float, default=0.85)
    pagerank.add_argument("--walks", type=int, default=64,
                          help="walks per vertex")
    pagerank.add_argument("--seed", type=int, default=0)
    pagerank.add_argument("--json", action="store_true",
                          help="machine-readable output")

    mst_spec = get_workload("mst")
    mst = sub.add_parser(
        "mst",
        help="oracle-gated minimum spanning forest over seeded weights",
    )
    mst.add_argument("--family", default="gnp", choices=family_names())
    mst.add_argument("--n", type=int, default=64)
    mst.add_argument(
        "--recipe", default=None,
        choices=list(mst_spec.recipe_names()),
        help="round model to bill under "
             f"(default: {mst_spec.default_recipe})",
    )
    mst.add_argument(
        "--weights", default="random",
        choices=list(mst_spec.weight_modes),
        help="instance weighting: i.i.d. uniform draws, quantized "
             "tie-prone draws, or the graph's own weights",
    )
    mst.add_argument("--seed", type=int, default=0)
    mst.add_argument("--json", action="store_true",
                     help="machine-readable output")
    _add_linalg_flag(mst)
    _add_cache_dir_flag(mst)
    _add_placement_flag(mst)
    _add_rng_contract_flag(mst)

    ensemble = sub.add_parser(
        "ensemble",
        help="batch-sample trees via the ensemble engine; report throughput",
    )
    ensemble.add_argument("--family", default="expander", choices=family_names())
    ensemble.add_argument("--n", type=int, default=32)
    ensemble.add_argument("--samples", type=int, default=100)
    ensemble.add_argument(
        "--variant", default="approximate",
        choices=list(ensemble_variant_names()),
    )
    ensemble.add_argument("--seed", type=int, default=0)
    ensemble.add_argument("--ell", type=int, default=1 << 12)
    ensemble.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all CPUs)",
    )
    ensemble.add_argument("--json", action="store_true",
                          help="machine-readable output")
    _add_linalg_flag(ensemble)
    _add_cache_dir_flag(ensemble)
    _add_placement_flag(ensemble)
    _add_rng_contract_flag(ensemble)

    audit = sub.add_parser(
        "audit", help="uniformity audit against exact enumeration"
    )
    audit.add_argument("--family", default="cycle", choices=family_names())
    audit.add_argument("--n", type=int, default=6)
    audit.add_argument("--samples", type=int, default=500)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--ell", type=int, default=1 << 10)
    audit.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sampling batch",
    )
    audit.add_argument("--json", action="store_true",
                       help="machine-readable output")
    _add_linalg_flag(audit)
    _add_cache_dir_flag(audit)
    _add_placement_flag(audit)
    _add_rng_contract_flag(audit)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit this machine's sparse/dense crossover and persist it",
    )
    calibrate.add_argument(
        "--cache-dir", dest="cache_dir", default="auto", metavar="DIR",
        help="persistence directory for the profile (default: 'auto' = "
             "$REPRO_CACHE_DIR or ~/.cache/repro-spanning-trees)",
    )
    calibrate.add_argument(
        "--quick", action="store_true",
        help="coarse subsecond probe (small sizes, one repeat)",
    )
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument("--json", action="store_true",
                           help="machine-readable profile output")

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain a persistent derived-graph cache dir",
    )
    cache.add_argument(
        "--cache-dir", dest="cache_dir", default="auto", metavar="DIR",
        help="cache directory to operate on (default: 'auto' = "
             "$REPRO_CACHE_DIR or ~/.cache/repro-spanning-trees)",
    )
    cache_action = cache.add_mutually_exclusive_group()
    cache_action.add_argument(
        "--prune-to", dest="prune_to", default=None, metavar="BYTES",
        type=_parse_byte_size,
        help="evict least-recently-used entries until the store holds at "
             "most BYTES (suffixes K/M/G accepted; 0 empties it)",
    )
    cache_action.add_argument(
        "--prune-expired", dest="prune_expired", default=None, metavar="DAYS",
        type=float,
        help="evict entries not touched (read or written) within the last "
             "DAYS days, per each entry's meta.json clock; fractional days "
             "accepted, 0 expires everything not touched this instant",
    )
    cache_action.add_argument(
        "--clear", action="store_true",
        help="delete every cached entry (the calibration profile stays)",
    )
    cache.add_argument("--json", action="store_true",
                       help="machine-readable stats output")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP sampling service (batch + NDJSON streaming)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8437,
        help="listen port (0 binds an ephemeral port, reported on stdout)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="batch worker processes (the shard layer)",
    )
    serve.add_argument(
        "--max-inflight", dest="max_inflight", type=int, default=8,
        help="admitted requests beyond this get 429 + Retry-After",
    )
    serve.add_argument(
        "--max-draws", dest="max_draws", type=int, default=10_000,
        help="per-request ensemble/audit draw-count cap",
    )
    serve.add_argument(
        "--max-graph-n", dest="max_graph_n", type=int, default=4096,
        help="largest graph a request may name",
    )
    serve.add_argument(
        "--max-jobs", dest="max_jobs", type=int, default=4,
        help="per-request process fan-out cap (also clamps jobs=None)",
    )
    serve.add_argument(
        "--max-body-bytes", dest="max_body_bytes", type=_parse_byte_size,
        default=1 << 20, metavar="BYTES",
        help="request body cap (suffixes K/M/G accepted)",
    )
    serve.add_argument(
        "--max-seconds", dest="max_seconds", type=float, default=None,
        help="per-request wall-clock budget (504 batch / stream error "
             "record); default: unlimited",
    )
    serve.add_argument(
        "--drain-seconds", dest="drain_seconds", type=float, default=10.0,
        help="grace period for in-flight work on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--preset", default="fast-bench",
        help="default config preset for requests that name none",
    )
    serve.add_argument(
        "--cache-dir", dest="cache_dir", default="auto", metavar="DIR",
        help="shared warm-start cache volume applied to every worker "
             "session (default: 'auto' = $REPRO_CACHE_DIR or "
             "~/.cache/repro-spanning-trees; 'none' disables the "
             "override and presets decide)",
    )
    serve.add_argument(
        "--session-cap", dest="session_cap", type=int, default=8,
        help="live sessions kept warm per worker process (LRU)",
    )
    serve.add_argument(
        "--queue-depth", dest="queue_depth", type=int, default=16,
        help="admission queue slots past max_inflight (0 = hard-reject "
             "with 429 instead of queueing)",
    )
    serve.add_argument(
        "--queue-wait-seconds", dest="queue_wait_seconds", type=float,
        default=30.0,
        help="longest a deadline-less request may wait in the admission "
             "queue before it is shed with 429",
    )
    serve.add_argument(
        "--max-redispatch", dest="max_redispatch", type=int, default=2,
        help="re-dispatch attempts for a batch task whose worker "
             "crashed (idempotent by the pinned-seed contract)",
    )
    serve.add_argument(
        "--breaker-threshold", dest="breaker_threshold", type=int,
        default=5,
        help="consecutive worker crashes that trip the circuit breaker "
             "(/healthz degraded, in-process serving)",
    )
    serve.add_argument(
        "--breaker-reset-seconds", dest="breaker_reset_seconds",
        type=float, default=30.0,
        help="cooldown between shard-pool probes while the breaker is "
             "open",
    )

    families = sub.add_parser("families", help="list graph families")
    families.add_argument("--json", action="store_true",
                          help="machine-readable family registry")
    sub.add_parser("verify", help="run the installation self-check battery")
    return parser


def _cmd_sample(args: argparse.Namespace) -> int:
    session = _open_session(args, ell=args.ell)
    response = session.run(
        SampleRequest(variant=args.variant, seed=args.seed)
    )

    def render(response: Response) -> None:
        meta = response.meta
        result = response.result
        print(f"{args.variant} sampler on {meta['family']} (n={meta['n']})")
        print(f"  rounds: {result.rounds}")
        if args.variant == "fastcover":
            print(f"  walk_length: {result.walk_length}")
        else:
            print(f"  phases: {result.phases}")
            for category, count in result.rounds_by_category().items():
                print(f"    {category:<26s} {count}")
        tree = [list(edge) for edge in result.tree]
        print(f"  tree: {len(tree)} edges: {tree[:6]}...")
        cache_line = _render_cache_line(meta)
        if cache_line:
            print(cache_line)

    return _emit(response, args.json, render)


def _cmd_rounds(args: argparse.Namespace) -> int:
    session = _open_session(args, ell=args.ell)
    response = session.run(RoundBillRequest(seed=args.seed))

    def render(response: Response) -> None:
        meta = response.meta
        bill = response.result
        print(f"{meta['family']} (n={meta['n']}, m={meta['m']})")
        print(f"{'variant':<14s} {'rounds':>8s} {'phases':>7s}")
        print(f"{'approximate':<14s} {bill.approximate_rounds:>8d} "
              f"{bill.approximate_phases:>7d}")
        print(f"{'exact':<14s} {bill.exact_rounds:>8d} "
              f"{bill.exact_phases:>7d}")
        print(f"{'fastcover':<14s} {bill.fastcover_rounds:>8d} {'-':>7s}")
        # Broadcast CC rounds are a different bandwidth regime from the
        # unicast rows above; shown side by side, never summed.
        print(f"{'broadcast':<14s} {bill.broadcast_rounds:>8d} "
              f"{bill.broadcast_phases:>7d}")

    return _emit(response, args.json, render)


def _cmd_pagerank(args: argparse.Namespace) -> int:
    session = _open_session(args)
    response = session.run(
        PageRankRequest(
            damping=args.damping, walks_per_vertex=args.walks, seed=args.seed
        )
    )

    def render(response: Response) -> None:
        meta = response.meta
        report = response.result
        print(f"PageRank on {meta['family']} (n={meta['n']}), "
              f"damping {report.damping}")
        print(f"walks/vertex: {report.walks_per_vertex}, "
              f"walk length: {report.walk_length}, rounds: {report.rounds}")
        print(f"L1 error vs exact solve: {report.l1_error:.4f}")
        exact = np.asarray(report.exact_scores)
        top = np.argsort(exact)[::-1][:5]
        print(f"{'vertex':>7s} {'exact':>8s} {'estimate':>9s}")
        for v in top:
            print(f"{int(v):>7d} {exact[v]:>8.4f} "
                  f"{report.scores[int(v)]:>9.4f}")

    return _emit(response, args.json, render)


def _cmd_mst(args: argparse.Namespace) -> int:
    session = _open_session(args)
    response = session.run(
        MSTRequest(recipe=args.recipe, weights=args.weights, seed=args.seed)
    )

    def render(response: Response) -> None:
        meta = response.meta
        report = response.result
        print(
            f"mst ({report.recipe}, {report.weights} weights) on "
            f"{meta['family']} (n={meta['n']}, m={meta['m']})"
        )
        print(f"  rounds: {report.rounds} ({meta['comm_model']}), "
              f"phases: {report.phases}")
        for category, count in report.rounds_by_category().items():
            print(f"    {category:<26s} {count}")
        print(f"  total weight: {report.total_weight:.6f}")
        print(
            f"  oracle ({report.oracle}): weight "
            f"{report.oracle_weight:.6f}, "
            f"match: {'yes' if report.oracle_match else 'NO'}"
        )
        forest = [list(edge) for edge in report.forest]
        print(f"  forest: {len(forest)} edges: {forest[:6]}...")

    return _emit(response, args.json, render)


def _cmd_ensemble(args: argparse.Namespace) -> int:
    session = _open_session(args, ell=args.ell)
    response = session.run(
        EnsembleRequest(
            count=args.samples,
            variant=args.variant,
            seed=args.seed,
            jobs=args.jobs,
            leverage_audit=True,
        )
    )

    def render(response: Response) -> None:
        meta = response.meta
        result = response.result
        leverage = meta["leverage"]
        print(
            f"ensemble: {result.count} {args.variant} trees on "
            f"{meta['family']} (n={meta['n']}), {result.jobs} job(s)"
        )
        print(
            f"  throughput: {result.trees_per_second():.2f} trees/s "
            f"({result.seconds:.4f}s); mean rounds {result.mean_rounds():.1f}"
        )
        print(
            f"  leverage marginals: max dev "
            f"{leverage['max_abs_deviation']:.5f} / "
            f"mean {leverage['mean_abs_deviation']:.5f} "
            f"(noise ~ {leverage['max_noise_scale']:.5f})"
        )
        cache_line = _render_cache_line(meta)
        if cache_line:
            print(cache_line)

    return _emit(response, args.json, render)


def _cmd_audit(args: argparse.Namespace) -> int:
    session = _open_session(args, ell=args.ell)
    response = session.run(
        AuditRequest(
            samples=args.samples,
            seed=args.seed,
            jobs=args.jobs,
        )
    )

    def render(response: Response) -> None:
        meta = response.meta
        report = response.result
        print(f"audit: {meta['family']} (n={meta['n']}), "
              f"{report.spanning_trees} trees, {report.samples} samples")
        print(f"TV to uniform: {report.tv_to_uniform:.4f} "
              f"(perfect-sampler noise ~ {report.noise_floor:.4f})")
        print(f"chi-square p-value: {report.chi_square_p:.3g}")
        print("verdict:", report.verdict)

    return _emit(response, args.json, render)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.engine.store import resolve_cache_root
    from repro.linalg.calibrate import run_calibration, save_profile

    root = resolve_cache_root(args.cache_dir)
    profile = run_calibration(quick=args.quick, seed=args.seed)
    path = save_profile(root, profile)
    if args.json:
        payload = profile.to_dict()
        payload["path"] = str(path)
        print(json_module.dumps(payload, indent=2))
        return 0
    print(f"calibrated sparse/dense crossover for host {profile.host!r}:")
    print(f"  sparse_auto_min_n:   {profile.sparse_auto_min_n}")
    print(f"  sparse_auto_density: {profile.sparse_auto_density}")
    print(f"{'probe':<8s} {'n':>5s} {'density':>8s} {'dense s':>9s} "
          f"{'sparse s':>9s} {'winner':>7s}")
    for row in profile.probe:
        if "dense_seconds" not in row:
            continue
        density = row.get("density")
        print(
            f"{row['probe']:<8s} {row['n']:>5d} "
            f"{'-' if density is None else f'{density:.2f}':>8s} "
            f"{row['dense_seconds']:>9.4f} {row['sparse_seconds']:>9.4f} "
            f"{'sparse' if row['sparse_wins'] else 'dense':>7s}"
        )
    print(f"profile written to {path}")
    print("sessions with linalg_backend='auto' and a cache_dir pointed at "
          "this directory now use the fitted crossover")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.engine.store import DiskTier, resolve_cache_root

    root = resolve_cache_root(args.cache_dir)
    if not root.is_dir():
        # Inspection must not litter the filesystem (DiskTier mkdirs on
        # construction) or mistake a typo'd path for an empty cache.
        if args.json:
            print(json_module.dumps(
                {"action": "stats", "root": str(root), "exists": False}
            ))
        else:
            print(f"no cache directory at {root}")
        return 0
    tier = DiskTier(root)
    evicted = None
    action = "stats"
    if args.clear:
        action = "clear"
        evicted = tier.clear()
    elif args.prune_to is not None:
        action = "prune"
        evicted = tier.prune(args.prune_to)
    elif args.prune_expired is not None:
        action = "prune-expired"
        evicted = tier.prune_expired(args.prune_expired * 86400.0)
    entries = tier.entry_count()
    total = tier.total_bytes()
    calibration = (root / "calibration.json").exists()
    if args.json:
        payload = {
            "action": action,
            "root": str(root),
            "entries": int(entries),
            "bytes": int(total),
            "calibration_profile": bool(calibration),
        }
        if evicted is not None:
            payload["evicted"] = int(evicted)
        print(json_module.dumps(payload, indent=2))
        return 0
    print(f"derived-graph cache at {root}")
    if evicted is not None:
        verb = "cleared" if action == "clear" else "pruned"
        print(f"  {verb}: {evicted} entries evicted")
    print(f"  entries: {entries}")
    print(f"  bytes:   {total} ({total / 2**20:.1f} MB)")
    print(f"  calibration profile: "
          f"{'present' if calibration else 'absent'}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the service layer pulls in asyncio machinery no
    # other subcommand needs.
    from repro.service.protocol import ServiceLimits
    from repro.service.server import ServerConfig, serve

    cache_dir: str | None = args.cache_dir
    if cache_dir in ("none", ""):
        cache_dir = None
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        limits=ServiceLimits(
            max_draws=args.max_draws,
            max_graph_n=args.max_graph_n,
            max_jobs=args.max_jobs,
            max_body_bytes=args.max_body_bytes,
            max_seconds=args.max_seconds,
        ),
        preset=args.preset,
        cache_dir=cache_dir,
        session_cap=args.session_cap,
        drain_seconds=args.drain_seconds,
        queue_depth=args.queue_depth,
        queue_wait_seconds=args.queue_wait_seconds,
        max_redispatch=args.max_redispatch,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset_seconds,
    )
    try:
        return serve(config)
    except OSError as error:
        # Bind failures (EADDRINUSE, bad host) are operator errors, not
        # crashes: one line on stderr, non-zero exit, no traceback.
        print(
            f"error: cannot serve on {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.selfcheck import main_cli

    return main_cli()


def _cmd_families(args: argparse.Namespace) -> int:
    if args.json:
        import json as json_module

        print(json_module.dumps(family_catalog(), indent=2))
        return 0
    for name in family_names():
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _make_parser().parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "rounds": _cmd_rounds,
        "pagerank": _cmd_pagerank,
        "mst": _cmd_mst,
        "ensemble": _cmd_ensemble,
        "audit": _cmd_audit,
        "calibrate": _cmd_calibrate,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "families": _cmd_families,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
