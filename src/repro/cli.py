"""Command-line interface: sample trees and inspect round bills.

Usage (installed as ``python -m repro``)::

    python -m repro sample --family expander --n 32 --variant approximate
    python -m repro sample --family lollipop --n 24 --variant exact --seed 7
    python -m repro rounds --family gnp --n 48
    python -m repro families

Subcommands:

``sample``
    Draw one spanning tree with the chosen sampler variant and print the
    edge list plus phase/round diagnostics.
``rounds``
    Run all three samplers on one graph and print a round-bill comparison
    (the quickstart's table, scriptable).
``ensemble``
    Draw a batch of trees through the
    :class:`~repro.engine.ensemble.EnsembleEngine` (per-draw spawned
    seeds, ``--jobs`` process fan-out) and report throughput plus the
    leverage-score marginal audit.
``audit``
    Uniformity audit against exact enumeration (engine-backed batch).
``families``
    List the available graph families and their parameters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

import numpy as np

from repro import graphs
from repro.core import (
    CongestedCliqueTreeSampler,
    ExactTreeSampler,
    SamplerConfig,
    sample_tree_fast_cover,
)
from repro.errors import ReproError
from repro.graphs.core import WeightedGraph

__all__ = ["main", "build_graph", "FAMILIES"]

FAMILIES: dict[str, Callable[[int, np.random.Generator], WeightedGraph]] = {
    "expander": lambda n, rng: graphs.random_regular_graph(
        n if n % 2 == 0 else n + 1, 4, rng=rng
    ),
    "gnp": lambda n, rng: graphs.erdos_renyi_graph(n, rng=rng),
    "complete": lambda n, rng: graphs.complete_graph(n),
    "cycle": lambda n, rng: graphs.cycle_graph(n),
    "path": lambda n, rng: graphs.path_graph(n),
    "star": lambda n, rng: graphs.star_graph(n),
    "wheel": lambda n, rng: graphs.wheel_graph(n),
    "lollipop": lambda n, rng: graphs.lollipop_graph(n),
    "barbell": lambda n, rng: graphs.barbell_graph(n),
    "bipartite": lambda n, rng: graphs.complete_bipartite_unbalanced(n),
    "grid": lambda n, rng: graphs.grid_graph(
        max(2, int(np.sqrt(n))), max(2, int(np.ceil(n / max(2, int(np.sqrt(n))))))
    ),
}


def build_graph(family: str, n: int, rng: np.random.Generator) -> WeightedGraph:
    """Instantiate a named family at (roughly) n vertices."""
    try:
        factory = FAMILIES[family]
    except KeyError:
        raise ReproError(
            f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
        ) from None
    return factory(n, rng)


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spanning tree sampling in the simulated CongestedClique",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="draw one spanning tree")
    sample.add_argument("--family", default="expander", choices=sorted(FAMILIES))
    sample.add_argument("--n", type=int, default=32)
    sample.add_argument(
        "--variant", default="approximate",
        choices=["approximate", "exact", "fastcover"],
    )
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--ell", type=int, default=1 << 12,
                        help="nominal walk length (power of two)")
    sample.add_argument("--json", action="store_true",
                        help="machine-readable output")

    rounds = sub.add_parser("rounds", help="compare sampler round bills")
    rounds.add_argument("--family", default="expander", choices=sorted(FAMILIES))
    rounds.add_argument("--n", type=int, default=32)
    rounds.add_argument("--seed", type=int, default=0)
    rounds.add_argument("--ell", type=int, default=1 << 12)

    pagerank = sub.add_parser(
        "pagerank", help="walk-based PageRank vs the exact solve"
    )
    pagerank.add_argument("--family", default="wheel", choices=sorted(FAMILIES))
    pagerank.add_argument("--n", type=int, default=32)
    pagerank.add_argument("--damping", type=float, default=0.85)
    pagerank.add_argument("--walks", type=int, default=64,
                          help="walks per vertex")
    pagerank.add_argument("--seed", type=int, default=0)

    ensemble = sub.add_parser(
        "ensemble",
        help="batch-sample trees via the ensemble engine; report throughput",
    )
    ensemble.add_argument("--family", default="expander", choices=sorted(FAMILIES))
    ensemble.add_argument("--n", type=int, default=32)
    ensemble.add_argument("--samples", type=int, default=100)
    ensemble.add_argument(
        "--variant", default="approximate", choices=["approximate", "exact"]
    )
    ensemble.add_argument("--seed", type=int, default=0)
    ensemble.add_argument("--ell", type=int, default=1 << 12)
    ensemble.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all CPUs)",
    )
    ensemble.add_argument("--json", action="store_true",
                          help="machine-readable output")

    audit = sub.add_parser(
        "audit", help="uniformity audit against exact enumeration"
    )
    audit.add_argument("--family", default="cycle", choices=sorted(FAMILIES))
    audit.add_argument("--n", type=int, default=6)
    audit.add_argument("--samples", type=int, default=500)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--ell", type=int, default=1 << 10)
    audit.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sampling batch",
    )

    sub.add_parser("families", help="list graph families")
    sub.add_parser("verify", help="run the installation self-check battery")
    return parser


def _cmd_sample(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_graph(args.family, args.n, rng)
    config = SamplerConfig(ell=args.ell)
    if args.variant == "fastcover":
        result = sample_tree_fast_cover(graph, rng)
        payload = {
            "family": args.family,
            "n": graph.n,
            "variant": args.variant,
            "rounds": result.rounds,
            "walk_length": result.walk_length,
            "tree": [list(edge) for edge in result.tree],
        }
    else:
        sampler_cls = (
            ExactTreeSampler if args.variant == "exact"
            else CongestedCliqueTreeSampler
        )
        result = sampler_cls(graph, config).sample(rng)
        payload = {
            "family": args.family,
            "n": graph.n,
            "variant": args.variant,
            "rounds": result.rounds,
            "phases": result.phases,
            "rounds_by_category": result.rounds_by_category(),
            "tree": [list(edge) for edge in result.tree],
        }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{args.variant} sampler on {args.family} (n={graph.n})")
        for key, value in payload.items():
            if key == "tree":
                print(f"  tree: {len(value)} edges: {value[:6]}...")
            elif key == "rounds_by_category":
                for category, count in value.items():
                    print(f"    {category:<26s} {count}")
            else:
                print(f"  {key}: {value}")
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_graph(args.family, args.n, rng)
    config = SamplerConfig(ell=args.ell)
    approx = CongestedCliqueTreeSampler(graph, config).sample(rng)
    exact = ExactTreeSampler(graph, config).sample(rng)
    fast = sample_tree_fast_cover(graph, rng)
    print(f"{args.family} (n={graph.n}, m={graph.m})")
    print(f"{'variant':<14s} {'rounds':>8s} {'phases':>7s}")
    print(f"{'approximate':<14s} {approx.rounds:>8d} {approx.phases:>7d}")
    print(f"{'exact':<14s} {exact.rounds:>8d} {exact.phases:>7d}")
    print(f"{'fastcover':<14s} {fast.rounds:>8d} {'-':>7s}")
    return 0


def _cmd_pagerank(args: argparse.Namespace) -> int:
    from repro.walks import pagerank_exact, pagerank_via_walks

    rng = np.random.default_rng(args.seed)
    graph = build_graph(args.family, args.n, rng)
    exact = pagerank_exact(graph, damping=args.damping)
    estimate = pagerank_via_walks(
        graph, damping=args.damping, walks_per_vertex=args.walks, rng=rng
    )
    print(f"PageRank on {args.family} (n={graph.n}), damping {args.damping}")
    print(f"walks/vertex: {args.walks}, walk length: {estimate.walk_length}, "
          f"rounds: {estimate.rounds}")
    print(f"L1 error vs exact solve: {estimate.l1_error(exact):.4f}")
    top = np.argsort(exact)[::-1][:5]
    print(f"{'vertex':>7s} {'exact':>8s} {'estimate':>9s}")
    for v in top:
        print(f"{int(v):>7d} {exact[v]:>8.4f} {estimate.scores[v]:>9.4f}")
    return 0


def _cmd_ensemble(args: argparse.Namespace) -> int:
    from repro.analysis import ensemble_leverage_report

    rng = np.random.default_rng(args.seed)
    graph = build_graph(args.family, args.n, rng)
    stats = ensemble_leverage_report(
        graph,
        args.samples,
        config=SamplerConfig(ell=args.ell),
        variant=args.variant,
        seed=args.seed,
        jobs=args.jobs,
    )
    payload = {
        "family": args.family,
        "n": graph.n,
        "variant": args.variant,
        "samples": int(stats["num_trees"]),
        "jobs": int(stats["jobs"]),
        "seconds": round(stats["seconds"], 4),
        "trees_per_second": round(stats["trees_per_second"], 2),
        "mean_rounds": round(stats["mean_rounds"], 1),
        "max_abs_deviation": round(stats["max_abs_deviation"], 5),
        "mean_abs_deviation": round(stats["mean_abs_deviation"], 5),
        "noise_scale": round(stats["max_noise_scale"], 5),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"ensemble: {payload['samples']} {args.variant} trees on "
            f"{args.family} (n={graph.n}), {payload['jobs']} job(s)"
        )
        print(
            f"  throughput: {payload['trees_per_second']} trees/s "
            f"({payload['seconds']}s); mean rounds {payload['mean_rounds']}"
        )
        print(
            f"  leverage marginals: max dev {payload['max_abs_deviation']} / "
            f"mean {payload['mean_abs_deviation']} "
            f"(noise ~ {payload['noise_scale']})"
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import (
        chi_square_uniformity,
        expected_tv_noise,
        tv_to_uniform,
    )
    from repro.engine.ensemble import sample_tree_ensemble
    from repro.graphs import count_spanning_trees

    rng = np.random.default_rng(args.seed)
    graph = build_graph(args.family, args.n, rng)
    num_trees = count_spanning_trees(graph)
    if num_trees > 100_000:
        raise ReproError(
            f"{args.family}(n={graph.n}) has {num_trees:.2e} trees; pick a "
            "smaller instance for exact-enumeration auditing"
        )
    trees = sample_tree_ensemble(
        graph,
        args.samples,
        config=SamplerConfig(ell=args.ell),
        seed=args.seed,
        jobs=args.jobs,
    ).trees
    tv = tv_to_uniform(graph, trees)
    __, p_value = chi_square_uniformity(graph, trees)
    noise = expected_tv_noise(int(round(num_trees)), args.samples)
    print(f"audit: {args.family} (n={graph.n}), {int(num_trees)} trees, "
          f"{args.samples} samples")
    print(f"TV to uniform: {tv:.4f} (perfect-sampler noise ~ {noise:.4f})")
    print(f"chi-square p-value: {p_value:.3g}")
    print("verdict:", "UNIFORM" if p_value > 1e-3 else "BIASED")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.selfcheck import main_cli

    return main_cli()


def _cmd_families(args: argparse.Namespace) -> int:
    for name in sorted(FAMILIES):
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _make_parser().parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "rounds": _cmd_rounds,
        "pagerank": _cmd_pagerank,
        "ensemble": _cmd_ensemble,
        "audit": _cmd_audit,
        "families": _cmd_families,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
